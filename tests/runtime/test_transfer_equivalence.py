"""Compressed-transfer equivalence: codecs never change answers.

Chunks fetched from a pre-compressed dataset decode to bit-identical
bytes, and every engine produces the same answers across every
placement, with adaptive fetch on or off -- compression and autotuning
are transport optimizations, invisible to the reduction.  (Float
results are compared allclose: the engines' reduce order depends on
thread scheduling, never on the codec.)
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_points, generate_tokens
from repro.runtime import ClusterConfig, make_engine
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store
from repro.storage.transfer import ParallelFetcher

ENGINES = ("threaded", "process", "actor")
PLACEMENTS = {"local-only": 1.0, "hybrid": 0.5, "cloud-only": 0.0}


def build_env(units, fmt, local_fraction, codec):
    stores = {
        "local": MemoryStore("local"),
        "cloud": SimulatedS3Store(profile=S3Profile.unthrottled()),
    }
    index = write_dataset(
        units, fmt, stores["local"], n_files=4,
        chunk_units=max(1, len(units) // 12), codec=codec,
    )
    fractions = {}
    if local_fraction > 0:
        fractions["local"] = local_fraction
    if local_fraction < 1:
        fractions["cloud"] = 1.0 - local_fraction
    index = distribute_dataset(index, stores, fractions, stores["local"])
    clusters = [
        ClusterConfig("local", "local", 2, 2),
        ClusterConfig("cloud", "cloud", 2, 2),
    ]
    return stores, index, clusters


def run_engine(name, spec, stores, index, clusters, adaptive=False):
    return make_engine(
        name, clusters, stores, batch_size=2, adaptive_fetch=adaptive
    ).run(spec, index)


@pytest.mark.parametrize("placement", PLACEMENTS, ids=PLACEMENTS.keys())
class TestCompressedEquivalence:
    def test_wordcount_bit_identical(self, placement):
        toks = generate_tokens(9000, 250, seed=71)
        spec = WordCountSpec()
        frac = PLACEMENTS[placement]
        ref = wordcount_exact(toks)
        for name in ENGINES:
            for codec in (None, "shuffle"):
                stores, index, clusters = build_env(toks, spec.fmt, frac, codec)
                rr = run_engine(name, spec, stores, index, clusters)
                assert rr.result == ref, f"{name}/{codec} diverged"
                assert rr.stats.jobs_processed == len(index.chunks)
                if codec == "shuffle":
                    # Integer token ids shuffle-compress hard: far fewer
                    # bytes crossed the stores than the workers consumed.
                    assert rr.stats.bytes_logical == index.nbytes
                    assert rr.stats.bytes_wire < rr.stats.bytes_logical
                    assert rr.stats.decode_s >= 0.0

    def test_kmeans_chunks_bit_identical_results_converge(self, placement):
        pts = generate_points(1800, 4, n_clusters=3, spread=0.08, seed=72)
        cents = generate_points(3, 4, seed=73)
        spec = KMeansSpec(cents)
        frac = PLACEMENTS[placement]

        # Bit-identity holds at the data layer: every chunk fetched
        # from the compressed dataset decodes to exactly the bytes the
        # plain dataset serves.  (The engines' reduce order depends on
        # thread scheduling, so even two plain runs differ by ~1 ULP --
        # result equality can only be allclose.)
        stores_p, index_p, _ = build_env(pts, spec.fmt, frac, None)
        stores_c, index_c, clusters = build_env(pts, spec.fmt, frac, "shuffle")
        fetch_p = {loc: ParallelFetcher(s) for loc, s in stores_p.items()}
        fetch_c = {loc: ParallelFetcher(s) for loc, s in stores_c.items()}
        for ch_p, ch_c in zip(index_p.chunks, index_c.chunks):
            raw_p, _ = fetch_p[ch_p.location].fetch_chunk(ch_p)
            raw_c, info = fetch_c[ch_c.location].fetch_chunk(ch_c)
            assert raw_c == raw_p, f"chunk {ch_c.chunk_id} bytes differ"
            assert info.bytes_wire < info.bytes_logical

        results = {}
        for codec in (None, "shuffle"):
            for name in ENGINES:
                stores, index, clus = build_env(pts, spec.fmt, frac, codec)
                rr = run_engine(name, spec, stores, index, clus)
                results[(name, codec)] = rr.result
        base = results[("threaded", None)]
        for (name, codec), res in results.items():
            np.testing.assert_allclose(
                res.centroids, base.centroids,
                err_msg=f"{name}/{codec} centroids diverged",
            )
            assert int(res.counts.sum()) == len(pts)


class TestAdaptiveFetch:
    def test_adaptive_preserves_results_and_reports_tuners(self):
        toks = generate_tokens(9000, 250, seed=74)
        spec = WordCountSpec()
        ref = wordcount_exact(toks)
        for name in ENGINES:
            stores, index, clusters = build_env(toks, spec.fmt, 0.5, "zlib")
            rr = run_engine(name, spec, stores, index, clusters, adaptive=True)
            assert rr.result == ref, f"{name} adaptive diverged"
            snaps = [
                snap
                for c in rr.stats.clusters.values()
                for snap in c.autotune.values()
            ]
            assert snaps, f"{name}: no autotune snapshots recorded"
            assert all(s["n_samples"] > 0 for s in snaps)

    def test_lz4_request_degrades_gracefully(self):
        """Asking for lz4 works whether or not the package exists (the
        organizer falls back to zlib), and results are unchanged."""
        toks = generate_tokens(6000, 200, seed=75)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.5, "lz4")
        assert index.meta["codec"] in ("lz4", "zlib")
        rr = run_engine("threaded", spec, stores, index, clusters)
        assert rr.result == wordcount_exact(toks)
