"""Engine equivalence: all three executors compute the same answers.

The threaded, process, and actor engines implement the same
head/master/slave protocol over the same scheduler; for every
application and data placement they must produce identical results and
account every job exactly once -- no job lost, none double-folded,
regardless of which side of the process boundary the fold ran on.
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_points, generate_tokens
from repro.runtime import ClusterConfig, make_engine
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store

ENGINES = ("threaded", "process", "actor")

#: local_fraction -> placement label used in test ids.
PLACEMENTS = {"local-only": 1.0, "hybrid": 0.5, "cloud-only": 0.0}


def build_env(units, fmt, local_fraction):
    stores = {
        "local": MemoryStore("local"),
        "cloud": SimulatedS3Store(profile=S3Profile.unthrottled()),
    }
    index = write_dataset(
        units, fmt, stores["local"], n_files=4,
        chunk_units=max(1, len(units) // 12),
    )
    fractions = {}
    if local_fraction > 0:
        fractions["local"] = local_fraction
    if local_fraction < 1:
        fractions["cloud"] = 1.0 - local_fraction
    index = distribute_dataset(index, stores, fractions, stores["local"])
    clusters = [
        ClusterConfig("local", "local", 2, 2),
        ClusterConfig("cloud", "cloud", 2, 2),
    ]
    return stores, index, clusters


def run_engine(name, spec, stores, index, clusters):
    return make_engine(name, clusters, stores, batch_size=2).run(spec, index)


@pytest.mark.parametrize("placement", PLACEMENTS, ids=PLACEMENTS.keys())
class TestAllEnginesAgree:
    def test_wordcount_identical_counts(self, placement):
        toks = generate_tokens(12000, 300, seed=61)
        spec = WordCountSpec()
        stores, index, clusters = build_env(
            toks, spec.fmt, PLACEMENTS[placement]
        )
        ref = wordcount_exact(toks)
        n_jobs = len(index.chunks)
        for name in ENGINES:
            rr = run_engine(name, spec, stores, index, clusters)
            assert rr.result == ref, f"{name} wordcount diverged"
            assert rr.stats.jobs_processed == n_jobs, (
                f"{name}: {rr.stats.jobs_processed} jobs for {n_jobs} chunks"
            )

    def test_kmeans_identical_step(self, placement):
        pts = generate_points(2400, 4, n_clusters=3, spread=0.08, seed=62)
        cents = generate_points(3, 4, seed=63)
        spec = KMeansSpec(cents)
        stores, index, clusters = build_env(
            pts, spec.fmt, PLACEMENTS[placement]
        )
        ref = lloyd_step(pts, cents)
        n_jobs = len(index.chunks)
        for name in ENGINES:
            rr = run_engine(name, spec, stores, index, clusters)
            np.testing.assert_allclose(
                rr.result.centroids, ref.centroids,
                err_msg=f"{name} centroids diverged",
            )
            np.testing.assert_array_equal(rr.result.counts, ref.counts)
            assert rr.stats.jobs_processed == n_jobs


class TestExactlyOnceUnderStealing:
    def test_jobs_partition_across_clusters(self):
        """Per-cluster job counts sum to the total with no overlap even
        when one side steals (cloud-only placement, local workers idle
        or stealing)."""
        toks = generate_tokens(9000, 200, seed=64)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.0)
        n_jobs = len(index.chunks)
        for name in ENGINES:
            rr = run_engine(name, spec, stores, index, clusters)
            per_cluster = [
                c.jobs_processed for c in rr.stats.clusters.values()
            ]
            assert sum(per_cluster) == n_jobs
            assert rr.result == wordcount_exact(toks)
