"""Engine equivalence: all three executors compute the same answers.

The threaded, process, and actor engines implement the same
head/master/slave protocol over the same scheduler -- and, since the
shared-core refactor, the same :class:`SlaveRuntime` worker loop behind
the same :class:`EngineOptions` surface.  For every application, data
placement, and feature combination (prefetch, chunk cache, retries
under injected faults, worker crashes) they must produce identical
results and account every job exactly once -- no job lost, none
double-folded, regardless of which side of the process boundary the
fold ran on.
"""

import threading

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_points, generate_tokens
from repro.runtime import ClusterConfig, EngineOptions, make_engine
from repro.storage.cache import ChunkCache
from repro.storage.faults import FaultInjectingStore, FaultSpec
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryPolicy
from repro.storage.s3 import S3Profile, SimulatedS3Store

ENGINES = ("threaded", "process", "actor")

#: local_fraction -> placement label used in test ids.
PLACEMENTS = {"local-only": 1.0, "hybrid": 0.5, "cloud-only": 0.0}


def build_env(units, fmt, local_fraction):
    stores = {
        "local": MemoryStore("local"),
        "cloud": SimulatedS3Store(profile=S3Profile.unthrottled()),
    }
    index = write_dataset(
        units, fmt, stores["local"], n_files=4,
        chunk_units=max(1, len(units) // 12),
    )
    fractions = {}
    if local_fraction > 0:
        fractions["local"] = local_fraction
    if local_fraction < 1:
        fractions["cloud"] = 1.0 - local_fraction
    index = distribute_dataset(index, stores, fractions, stores["local"])
    clusters = [
        ClusterConfig("local", "local", 2, 2),
        ClusterConfig("cloud", "cloud", 2, 2),
    ]
    return stores, index, clusters


def run_engine(name, spec, stores, index, clusters):
    return make_engine(name, clusters, stores, batch_size=2).run(spec, index)


@pytest.mark.parametrize("placement", PLACEMENTS, ids=PLACEMENTS.keys())
class TestAllEnginesAgree:
    def test_wordcount_identical_counts(self, placement):
        toks = generate_tokens(12000, 300, seed=61)
        spec = WordCountSpec()
        stores, index, clusters = build_env(
            toks, spec.fmt, PLACEMENTS[placement]
        )
        ref = wordcount_exact(toks)
        n_jobs = len(index.chunks)
        for name in ENGINES:
            rr = run_engine(name, spec, stores, index, clusters)
            assert rr.result == ref, f"{name} wordcount diverged"
            assert rr.stats.jobs_processed == n_jobs, (
                f"{name}: {rr.stats.jobs_processed} jobs for {n_jobs} chunks"
            )

    def test_kmeans_identical_step(self, placement):
        pts = generate_points(2400, 4, n_clusters=3, spread=0.08, seed=62)
        cents = generate_points(3, 4, seed=63)
        spec = KMeansSpec(cents)
        stores, index, clusters = build_env(
            pts, spec.fmt, PLACEMENTS[placement]
        )
        ref = lloyd_step(pts, cents)
        n_jobs = len(index.chunks)
        for name in ENGINES:
            rr = run_engine(name, spec, stores, index, clusters)
            np.testing.assert_allclose(
                rr.result.centroids, ref.centroids,
                err_msg=f"{name} centroids diverged",
            )
            np.testing.assert_array_equal(rr.result.counts, ref.counts)
            assert rr.stats.jobs_processed == n_jobs


class TestExactlyOnceUnderStealing:
    def test_jobs_partition_across_clusters(self):
        """Per-cluster job counts sum to the total with no overlap even
        when one side steals (cloud-only placement, local workers idle
        or stealing)."""
        toks = generate_tokens(9000, 200, seed=64)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.0)
        n_jobs = len(index.chunks)
        for name in ENGINES:
            rr = run_engine(name, spec, stores, index, clusters)
            per_cluster = [
                c.jobs_processed for c in rr.stats.clusters.values()
            ]
            assert sum(per_cluster) == n_jobs
            assert rr.result == wordcount_exact(toks)


#: Feature combinations of the unified option surface; every engine
#: must produce bit-identical wordcounts under each of them.
FEATURES = {
    "plain": {},
    "prefetch": dict(prefetch=True),
    "cache": dict(chunk_cache=None),  # fresh ChunkCache built per run
    "prefetch-cache": dict(prefetch=True, chunk_cache=None),
    "crash": dict(crash_plan={"cloud-w0": 0}),
    "crash-prefetch": dict(prefetch=True, crash_plan={"cloud-w0": 0}),
}

FAST_RETRY = RetryPolicy(max_attempts=8, base_delay_s=0.0, max_delay_s=0.0)


@pytest.mark.parametrize("feature", FEATURES, ids=FEATURES.keys())
class TestFeatureMatrix:
    """(engine) x (prefetch, cache, crash_plan): same results, same counts."""

    def test_identical_results_and_exactly_once(self, feature):
        toks = generate_tokens(10000, 250, seed=65)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.5)
        ref = wordcount_exact(toks)
        n_jobs = len(index.chunks)
        for name in ENGINES:
            opts = dict(FEATURES[feature])
            if "chunk_cache" in opts:
                opts["chunk_cache"] = ChunkCache(64 << 20)
            if "crash_plan" in opts:
                # Split every fetch across retrieval threads: the pool
                # round-trips yield the GIL so the doomed cloud worker
                # reliably claims a job before the run drains.
                opts["min_part_nbytes"] = 0
            rr = make_engine(
                name, clusters, stores, batch_size=2, **opts
            ).run(spec, index)
            assert rr.result == ref, f"{name}/{feature} diverged"
            assert rr.stats.jobs_processed == n_jobs, (
                f"{name}/{feature}: {rr.stats.jobs_processed} jobs "
                f"for {n_jobs} chunks"
            )
            if "crash_plan" in opts:
                # The crashed worker's in-flight job was requeued and
                # re-executed by a survivor -- never lost, never folded
                # twice (jobs_processed above counts each chunk once).
                assert rr.stats.n_failed_workers == 1, f"{name}/{feature}"
                assert rr.stats.n_requeued_jobs >= 1, f"{name}/{feature}"


class TestCacheAcrossPasses:
    def test_second_pass_hits_cache_on_all_engines(self):
        toks = generate_tokens(8000, 200, seed=66)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.5)
        ref = wordcount_exact(toks)
        for name in ENGINES:
            cache = ChunkCache(64 << 20)
            engine = make_engine(
                name, clusters, stores, batch_size=2, chunk_cache=cache
            )
            first = engine.run(spec, index)
            second = engine.run(spec, index)
            assert first.result == ref and second.result == ref
            assert second.stats.cache_hits == len(index.chunks), (
                f"{name}: second pass should be all cache hits"
            )


class TestRetryUnderFaultsMatrix:
    def test_transient_faults_retried_identically(self):
        """Seeded transient faults on the cloud store: every engine
        retries through them and lands on the exact same counts."""
        toks = generate_tokens(10000, 250, seed=67)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.5)
        ref = wordcount_exact(toks)
        n_jobs = len(index.chunks)
        for name in ENGINES:
            faulty = FaultInjectingStore(
                stores["cloud"], FaultSpec.parse("transient:p=0.3,seed=9")
            )
            run_stores = dict(stores, cloud=faulty)
            rr = make_engine(
                name, clusters, run_stores, batch_size=2,
                retry=FAST_RETRY, prefetch=True,
            ).run(spec, index)
            assert rr.result == ref, f"{name} diverged under faults"
            assert rr.stats.jobs_processed == n_jobs
            injected = faulty.injection_counts()
            assert injected["transient"] > 0, (
                f"{name}: fault injector never fired -- test is vacuous"
            )
            assert rr.stats.n_retries >= injected["transient"]


class TestReplicaOutageMatrix:
    def test_store_down_with_replicas_identical_results(self):
        """One of two replica stores hard-down: every engine fails over
        to the surviving replica, completes with zero failed workers,
        and produces bit-identical counts."""
        from repro.data.dataset import replicate_dataset
        from repro.storage.health import BreakerPolicy

        toks = generate_tokens(10000, 250, seed=71)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.5)
        index = replicate_dataset(index, stores, n_replicas=1)
        ref = wordcount_exact(toks)
        n_jobs = len(index.chunks)
        cloud_chunks = sum(1 for c in index.chunks if c.location == "cloud")
        assert cloud_chunks > 0
        for name in ENGINES:
            # Fresh injector per engine: counters prove the chaos fired.
            dead = FaultInjectingStore(
                stores["cloud"], FaultSpec(permanent_keys=("part",))
            )
            run_stores = dict(stores, cloud=dead)
            rr = make_engine(
                name, clusters, run_stores, batch_size=2,
                retry=FAST_RETRY, breaker=BreakerPolicy(recovery_s=60.0),
            ).run(spec, index)
            assert rr.result == ref, f"{name} diverged with a store down"
            assert rr.stats.jobs_processed == n_jobs
            assert rr.stats.n_failed_workers == 0, (
                f"{name}: failover should contain the outage without "
                f"sacrificing workers"
            )
            assert rr.stats.n_failovers > 0, f"{name}: no failovers recorded"
            assert dead.injection_counts()["permanent"] > 0, (
                f"{name}: fault injector never fired -- test is vacuous"
            )

    def test_hedge_option_accepted_by_every_engine(self):
        """Replicated dataset + hedge policy: identical results on all
        engines (stalls are injected seeded, so any hedges that fire
        race byte-identical replicas)."""
        from repro.data.dataset import replicate_dataset
        from repro.storage.health import HedgePolicy

        toks = generate_tokens(8000, 200, seed=72)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.5)
        index = replicate_dataset(index, stores, n_replicas=1)
        ref = wordcount_exact(toks)
        for name in ENGINES:
            stalled = FaultInjectingStore(
                stores["cloud"],
                FaultSpec(stall_p=0.5, stall_s=0.02, seed=73),
            )
            run_stores = dict(stores, cloud=stalled)
            rr = make_engine(
                name, clusters, run_stores, batch_size=2,
                hedge=HedgePolicy(min_threshold_s=0.005),
            ).run(spec, index)
            assert rr.result == ref, f"{name} diverged under hedging"
            assert rr.stats.jobs_processed == len(index.chunks)
            assert stalled.injection_counts()["stall"] > 0, (
                f"{name}: no stalls injected -- test is vacuous"
            )


class TestPushdownParity:
    """Metadata-first retrieval must be invisible in the answer: every
    engine produces bit-identical results with pushdown off, pruning,
    and the verify soundness guard -- while actually pruning chunks."""

    @pytest.mark.parametrize("mode", [None, "prune", "verify"],
                             ids=["off", "prune", "verify"])
    def test_filtered_wordcount_identical_across_engines_and_modes(self, mode):
        from repro.apps.filtered import (
            FilteredWordCountSpec,
            filtered_wordcount_exact,
        )

        toks = np.sort(generate_tokens(9000, 300, seed=70))
        spec = FilteredWordCountSpec(40, 99)
        stores, index, clusters = build_env(toks, spec.fmt, 0.5)
        ref = filtered_wordcount_exact(toks, 40, 99)
        baseline = None
        for name in ENGINES:
            rr = make_engine(
                name, clusters, stores, batch_size=2, pushdown=mode
            ).run(spec, index)
            assert rr.result == ref, f"{name}/pushdown={mode} diverged"
            if baseline is None:
                baseline = rr.result
            assert rr.result == baseline
            if mode is None:
                assert rr.stats.n_pruned_chunks == 0
                assert rr.stats.jobs_processed == len(index.chunks)
            else:
                assert rr.stats.n_pruned_chunks > 0, (
                    f"{name}: sorted data must let pruning fire"
                )
                assert rr.stats.jobs_processed == (
                    len(index.chunks) - rr.stats.n_pruned_chunks
                )


class TestOptionsValidationParity:
    """All engines validate identically through EngineOptions."""

    @pytest.fixture()
    def env(self):
        toks = generate_tokens(3000, 100, seed=68)
        return build_env(toks, WordCountSpec().fmt, 0.5)

    @pytest.mark.parametrize("name", ENGINES)
    def test_unknown_crash_target_rejected(self, env, name):
        stores, _index, clusters = env
        with pytest.raises(ValueError, match="crash_plan targets unknown"):
            make_engine(name, clusters, stores, crash_plan={"nope-w9": 1})

    @pytest.mark.parametrize("name", ENGINES)
    def test_duplicate_cluster_names_rejected(self, env, name):
        stores, _index, _clusters = env
        dupes = [
            ClusterConfig("same", "local", 1),
            ClusterConfig("same", "cloud", 1),
        ]
        with pytest.raises(ValueError, match="unique"):
            make_engine(name, dupes, stores)

    @pytest.mark.parametrize("name", ENGINES)
    def test_empty_clusters_rejected(self, env, name):
        stores, _index, _clusters = env
        with pytest.raises(ValueError, match="at least one cluster"):
            make_engine(name, [], stores)

    @pytest.mark.parametrize("name", ENGINES)
    def test_missing_store_rejected_at_run(self, env, name):
        _stores, index, clusters = env
        local_only = {"local": MemoryStore("local")}
        local_cluster = [ClusterConfig("local", "local", 1)]
        engine = make_engine(name, local_cluster, local_only)
        with pytest.raises(ValueError, match="unknown stores"):
            engine.run(WordCountSpec(), index)

    @pytest.mark.parametrize("name", ENGINES)
    def test_bad_batch_size_rejected(self, env, name):
        stores, _index, clusters = env
        with pytest.raises(ValueError, match="batch_size"):
            make_engine(name, clusters, stores, batch_size=0)

    def test_options_object_equivalent_to_kwargs(self, env):
        stores, index, clusters = env
        spec = WordCountSpec()
        via_kwargs = make_engine(
            "threaded", clusters, stores, batch_size=2, prefetch=True
        ).run(spec, index)
        via_options = make_engine(
            "threaded", clusters, stores,
            options=EngineOptions(batch_size=2, prefetch=True),
        ).run(spec, index)
        assert via_kwargs.result == via_options.result

    def test_options_and_kwargs_together_rejected(self, env):
        stores, _index, clusters = env
        with pytest.raises(TypeError, match="not both"):
            make_engine(
                "threaded", clusters, stores,
                options=EngineOptions(), prefetch=True,
            )


class TestVerifyChunksParity:
    """Every engine honors verify_chunks (the actor engine used to
    silently ignore it)."""

    @pytest.mark.parametrize("name", ENGINES)
    def test_corruption_detected(self, name):
        from repro.data.integrity import IntegrityError, attach_checksums

        toks = generate_tokens(6000, 150, seed=69)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt, 0.5)
        index = attach_checksums(index, stores)
        # Flip one byte of a cloud-resident chunk behind the checksums.
        victim = next(c for c in index.chunks if c.location == "cloud")
        raw = bytearray(stores["cloud"].get(victim.key, 0, None))
        raw[victim.offset] ^= 0xFF
        stores["cloud"].put(victim.key, bytes(raw))
        engine = make_engine(name, clusters, stores, verify_chunks=True)
        with pytest.raises(IntegrityError):
            engine.run(spec, index)


class TestActorDrainAwareRefill:
    """The master actor's refill protocol must not latch "done" on an
    empty reply while the head still has outstanding jobs (a crashed
    worker may requeue one -- the pre-refactor engine stranded it)."""

    def _make_master(self):
        from repro.data.chunks import ChunkInfo
        from repro.runtime.actors import _MasterActor
        from repro.runtime.jobs import Job
        from repro.runtime.messages import Channel
        from repro.runtime.stats import ClusterStats

        cluster = ClusterConfig("c", "local", 1)
        master = _MasterActor(
            cluster, Channel(), Channel(), None, None, {},
            EngineOptions(batch_size=2), 1,
            ClusterStats("c", "local"), 0.0, [], threading.Event(),
        )
        chunk = ChunkInfo(0, 0, "f0", 0, 8, 1, "local", None)
        return master, Job(7, chunk)

    def test_empty_reply_with_outstanding_does_not_latch(self):
        from repro.runtime.messages import AssignJobs

        master, job = self._make_master()
        master.inbox.send(AssignJobs((), outstanding=3))
        assert master.get_job(wait=False) is None
        assert not master._done, "latched done with jobs outstanding"
        # The head later reassigns the requeued job; the same master
        # must still be able to pick it up.
        master.inbox.send(AssignJobs((job,), outstanding=1, requeued=(7,)))
        got = master.get_job()
        assert got is job
        assert master.complete(got) is True  # accounted as a recovery

    def test_empty_reply_with_zero_outstanding_latches(self):
        from repro.runtime.messages import AssignJobs

        master, _job = self._make_master()
        master.inbox.send(AssignJobs((), outstanding=0))
        assert master.get_job() is None
        assert master._done
        # Latched: no further head round-trips are made.
        assert master.get_job() is None
        assert len(master.head_inbox) == 1

    def test_blocking_get_polls_until_job_arrives(self):
        from repro.runtime.messages import AssignJobs

        master, job = self._make_master()
        master.inbox.send(AssignJobs((), outstanding=2))
        master.inbox.send(AssignJobs((), outstanding=1))
        master.inbox.send(AssignJobs((job,), outstanding=1))
        assert master.get_job() is job
