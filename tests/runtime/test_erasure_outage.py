"""Erasure-coded striping survives store outages on every engine.

The acceptance bar for the striping layer: with (k=4, m=2) and m entire
stores dead, every engine completes with zero failed workers and a
bit-identical result, decoding parity only where a dead store held a
data fragment.
"""

import numpy as np
import pytest

from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.bursting.driver import run_threaded_bursting
from repro.data.generator import generate_tokens
from repro.storage.faults import FaultInjectingStore, FaultSpec
from repro.storage.health import BreakerPolicy, HedgePolicy
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryPolicy

ENGINES = ("threaded", "process", "actor")
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)


def make_stores(dead=()):
    stores = {}
    for name in ("local", "cloud", "s1", "s2", "s3", "s4"):
        store = MemoryStore(name)
        if name in dead:
            store = FaultInjectingStore(
                store, FaultSpec(permanent_keys=("part",)), armed=False
            )
        stores[name] = store
    return stores


def run(engine, stores, **kwargs):
    tokens = generate_tokens(20_000, 500, seed=45)
    rr = run_threaded_bursting(
        WordCountSpec(), tokens, stores, engine=engine,
        n_files=6, stripe=(4, 2), retry=FAST_RETRY, **kwargs,
    )
    return tokens, rr


class TestStripedEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_clean_run_bit_identical(self, engine):
        tokens, rr = run(engine, make_stores())
        assert rr.result == wordcount_exact(tokens)
        assert rr.stats.n_fragments == rr.stats.jobs_processed * 4
        assert rr.stats.n_parity_decodes == 0
        assert rr.stats.fragments_wasted_bytes == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_m_store_outage_completes(self, engine):
        stores = make_stores(dead=("s1", "s2"))
        tokens, rr = run(
            engine, stores,
            breaker=BreakerPolicy(fail_threshold=2, recovery_s=60.0),
            hedge=HedgePolicy(multiplier=3.0, min_threshold_s=0.005),
        )
        assert rr.result == wordcount_exact(tokens)
        assert rr.stats.n_failed_workers == 0
        assert rr.stats.n_parity_decodes > 0
        assert rr.stats.n_failovers > 0

    def test_replicas_and_stripe_mutually_exclusive(self):
        stores = make_stores()
        tokens = generate_tokens(1_000, 50, seed=1)
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_threaded_bursting(
                WordCountSpec(), tokens, stores,
                replicas=1, stripe=(2, 1),
            )

    def test_engines_agree_under_outage(self):
        results = []
        for engine in ENGINES:
            stores = make_stores(dead=("s1", "s2"))
            _, rr = run(
                engine, stores,
                breaker=BreakerPolicy(fail_threshold=2, recovery_s=60.0),
            )
            results.append(rr.result)
        assert results[0] == results[1] == results[2]


class TestStripedPipelineStats:
    def test_reassembly_copy_surfaces_in_pipeline_rows(self):
        tokens, rr = run("threaded", make_stores())
        rows = rr.stats.pipeline_rows()
        # Identity codec: the only copy per chunk is the reassembly.
        assert sum(r["n_copies"] for r in rows) == rr.stats.jobs_processed

    def test_fault_rows_carry_erasure_columns(self):
        stores = make_stores(dead=("s1", "s2"))
        _, rr = run(
            "threaded", stores,
            breaker=BreakerPolicy(fail_threshold=2, recovery_s=60.0),
        )
        for row in rr.stats.fault_rows():
            assert "n_parity_decodes" in row
            assert "wasted_frag_bytes" in row


def test_numpy_token_dtype_guard():
    # generate_tokens must stay uint-compatible with the byte format the
    # striping tests assume; a dtype drift would silently change frame
    # sizes and mask padding bugs.
    tokens = generate_tokens(100, 50, seed=0)
    assert np.issubdtype(tokens.dtype, np.integer)
