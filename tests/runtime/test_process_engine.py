"""ProcessEngine-specific behavior: shared-memory hygiene, crash
containment across a real process boundary, and IPC accounting.

Result equivalence with the other engines is covered by
``test_engine_equivalence.py``; these tests exercise what is unique to
running slaves as OS processes.
"""

import os

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_points, generate_tokens
from repro.runtime.engine import ClusterConfig
from repro.runtime.process_engine import ProcessEngine
from repro.storage.faults import TransientStorageError
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryPolicy
from repro.storage.s3 import S3Profile, SimulatedS3Store


def shm_entries() -> set[str]:
    """Names currently present under /dev/shm (POSIX shm segments)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def build_env(units, fmt, local_fraction=0.5, cloud_store=None):
    stores = {
        "local": MemoryStore("local"),
        "cloud": cloud_store
        or SimulatedS3Store(profile=S3Profile.unthrottled()),
    }
    index = write_dataset(
        units, fmt, stores["local"], n_files=4,
        chunk_units=max(1, len(units) // 12),
    )
    fractions = {}
    if local_fraction > 0:
        fractions["local"] = local_fraction
    if local_fraction < 1:
        fractions["cloud"] = 1.0 - local_fraction
    index = distribute_dataset(index, stores, fractions, stores["local"])
    clusters = [
        ClusterConfig("local", "local", 2, 2),
        ClusterConfig("cloud", "cloud", 2, 2),
    ]
    return stores, index, clusters


class TestSharedMemoryHygiene:
    def test_no_segments_leak_after_normal_run(self):
        toks = generate_tokens(8000, 200, seed=71)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        before = shm_entries()
        rr = ProcessEngine(clusters, stores).run(spec, index)
        assert rr.result == wordcount_exact(toks)
        assert shm_entries() - before == set()

    def test_no_segments_leak_after_worker_crash(self):
        toks = generate_tokens(8000, 200, seed=72)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        before = shm_entries()
        rr = ProcessEngine(
            clusters, stores, crash_plan={"cloud-w0": 1}
        ).run(spec, index)
        assert rr.result == wordcount_exact(toks)
        assert shm_entries() - before == set()

    def test_no_segments_leak_after_run_error(self):
        class ExplodingSpec(WordCountSpec):
            def local_reduction(self, robj, unit_group):
                raise RuntimeError("boom")

        toks = generate_tokens(4000, 100, seed=73)
        spec = ExplodingSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        before = shm_entries()
        with pytest.raises(RuntimeError, match="boom"):
            ProcessEngine(clusters, stores).run(spec, index)
        assert shm_entries() - before == set()

    def test_chunk_bytes_accounted_through_shm(self):
        toks = generate_tokens(8000, 200, seed=74)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        rr = ProcessEngine(clusters, stores).run(spec, index)
        total_chunk_bytes = sum(c.nbytes for c in index.chunks)
        # Every chunk crossed through shared memory at least once (robj
        # payload segments add on top).
        assert rr.stats.shm_nbytes >= total_chunk_bytes


class TestCrashContainment:
    def test_partial_robj_preserved_and_jobs_requeued(self):
        toks = generate_tokens(10000, 250, seed=75)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        rr = ProcessEngine(
            clusters, stores, crash_plan={"local-w0": 2}
        ).run(spec, index)
        assert rr.result == wordcount_exact(toks)
        assert rr.stats.n_failed_workers == 1
        assert rr.stats.n_requeued_jobs >= 1
        # Exactly-once: completions equal chunks despite the re-execution.
        assert rr.stats.jobs_processed == len(index.chunks)

    def test_crash_before_any_job(self):
        toks = generate_tokens(6000, 150, seed=76)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        rr = ProcessEngine(
            clusters, stores, crash_plan={"cloud-w1": 0}
        ).run(spec, index)
        assert rr.result == wordcount_exact(toks)
        assert rr.stats.n_failed_workers == 1

    def test_whole_cluster_dies_survivors_recover(self):
        toks = generate_tokens(8000, 200, seed=77)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        rr = ProcessEngine(
            clusters, stores, crash_plan={"cloud-w0": 0, "cloud-w1": 1}
        ).run(spec, index)
        assert rr.result == wordcount_exact(toks)
        assert rr.stats.n_failed_workers == 2
        assert rr.stats.jobs_processed == len(index.chunks)

    def test_retry_exhaustion_contained(self):
        """A fetch whose retries run dry kills only that worker: the
        failed job is requeued and re-fetched by a survivor."""

        class FlakyStore(MemoryStore):
            """Fails the first ``n`` gets with a transient error."""

            def __init__(self, name, n_failures):
                super().__init__(name)
                self.fails_left = n_failures

            def get(self, key, offset=0, nbytes=None):
                if self.fails_left > 0:
                    self.fails_left -= 1
                    raise TransientStorageError("injected transient")
                return super().get(key, offset, nbytes)

        toks = generate_tokens(8000, 200, seed=78)
        spec = WordCountSpec()
        cloud = FlakyStore("cloud", n_failures=1)
        stores, index, clusters = build_env(toks, spec.fmt, cloud_store=cloud)
        before = shm_entries()
        # max_attempts=1: the single injected failure exhausts one
        # fetch immediately and deterministically.
        rr = ProcessEngine(
            clusters, stores,
            retry=RetryPolicy(max_attempts=1, base_delay_s=0.001),
        ).run(spec, index)
        assert rr.result == wordcount_exact(toks)
        assert rr.stats.n_failed_workers == 1
        assert rr.stats.n_requeued_jobs >= 1
        assert rr.stats.jobs_processed == len(index.chunks)
        assert shm_entries() - before == set()


class TestIpcAccounting:
    def test_ipc_rows_populated(self):
        pts = generate_points(2000, 4, n_clusters=3, seed=79)
        spec = KMeansSpec(generate_points(3, 4, seed=80))
        stores, index, clusters = build_env(pts, spec.fmt)
        rr = ProcessEngine(clusters, stores).run(spec, index)
        np.testing.assert_allclose(
            rr.result.centroids, lloyd_step(pts, spec.centroids).centroids
        )
        rows = rr.stats.ipc_rows()
        assert {r["cluster"] for r in rows} == {"local", "cloud"}
        assert all(r["shm_nbytes"] > 0 for r in rows)
        # ser_s includes the worker-side pickle of the robj; it must be
        # measured (kmeans robjs carry real numpy payloads).
        assert sum(r["ser_s"] for r in rows) > 0

    def test_breakdown_rows_include_ipc_columns(self):
        toks = generate_tokens(5000, 120, seed=81)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        rr = ProcessEngine(clusters, stores).run(spec, index)
        for row in rr.stats.breakdown_rows():
            assert "ipc_s" in row and "ser_s" in row
            assert row["total_s"] >= row["ipc_s"] + row["ser_s"]


class TestConfiguration:
    def test_unknown_crash_plan_worker_rejected(self):
        stores = {"local": MemoryStore("local")}
        clusters = [ClusterConfig("local", "local", 1)]
        with pytest.raises(ValueError, match="unknown workers"):
            ProcessEngine(clusters, stores, crash_plan={"nope-w0": 1})

    def test_duplicate_cluster_names_rejected(self):
        stores = {"local": MemoryStore("local")}
        clusters = [
            ClusterConfig("x", "local", 1),
            ClusterConfig("x", "local", 1),
        ]
        with pytest.raises(ValueError, match="unique"):
            ProcessEngine(clusters, stores)

    def test_prefetch_disabled_still_correct(self):
        toks = generate_tokens(6000, 150, seed=82)
        spec = WordCountSpec()
        stores, index, clusters = build_env(toks, spec.fmt)
        rr = ProcessEngine(clusters, stores, prefetch=False).run(spec, index)
        assert rr.result == wordcount_exact(toks)
        assert rr.stats.jobs_processed == len(index.chunks)
