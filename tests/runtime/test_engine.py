"""Unit/integration tests for the threaded engine."""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.apps.knn import KnnSpec, knn_exact
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import points_format, tokens_format
from repro.data.generator import generate_points, generate_tokens
from repro.runtime.engine import ClusterConfig, ThreadedEngine
from repro.runtime.scheduler import RandomScheduler
from repro.storage.local import MemoryStore


def split_dataset(units, fmt, stores, local_frac=0.5, n_files=6, chunk_units=200):
    idx = write_dataset(units, fmt, stores["local"], n_files=n_files, chunk_units=chunk_units)
    fractions = {}
    if local_frac > 0:
        fractions["local"] = local_frac
    if local_frac < 1:
        fractions["cloud"] = 1 - local_frac
    return distribute_dataset(idx, stores, fractions, stores["local"])


@pytest.fixture
def two_clusters():
    return [
        ClusterConfig("local", "local", n_workers=2),
        ClusterConfig("cloud", "cloud", n_workers=2),
    ]


class TestSingleCluster:
    def test_wordcount_single_worker(self, tokens, stores):
        idx = split_dataset(tokens, tokens_format(), stores, local_frac=1.0)
        engine = ThreadedEngine([ClusterConfig("local", "local", 1)], stores)
        rr = engine.run(WordCountSpec(), idx)
        assert rr.result == wordcount_exact(tokens)

    def test_wordcount_many_workers(self, tokens, stores):
        idx = split_dataset(tokens, tokens_format(), stores, local_frac=1.0)
        engine = ThreadedEngine([ClusterConfig("local", "local", 4)], stores)
        rr = engine.run(WordCountSpec(), idx)
        assert rr.result == wordcount_exact(tokens)
        assert rr.stats.jobs_processed == len(idx.chunks)


class TestBursting:
    def test_knn_split_data(self, points, stores, two_clusters):
        idx = split_dataset(points, points_format(4), stores)
        engine = ThreadedEngine(two_clusters, stores, batch_size=2)
        q = np.full(4, 0.25)
        rr = engine.run(KnnSpec(q, 8), idx)
        ref = knn_exact(points, q, 8)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])

    def test_kmeans_split_data(self, points, stores, two_clusters):
        idx = split_dataset(points, points_format(4), stores, local_frac=1 / 3)
        cents = generate_points(4, 4, seed=77)
        engine = ThreadedEngine(two_clusters, stores, batch_size=2)
        rr = engine.run(KMeansSpec(cents), idx)
        ref = lloyd_step(points, cents)
        np.testing.assert_allclose(rr.result.centroids, ref.centroids)

    def test_all_jobs_processed_exactly_once(self, points, stores, two_clusters):
        idx = split_dataset(points, points_format(4), stores)
        engine = ThreadedEngine(two_clusters, stores)
        rr = engine.run(KnnSpec(np.zeros(4), 3), idx)
        assert rr.stats.jobs_processed == len(idx.chunks)

    def test_stats_have_both_clusters(self, points, stores, two_clusters):
        idx = split_dataset(points, points_format(4), stores)
        rr = ThreadedEngine(two_clusters, stores).run(KnnSpec(np.zeros(4), 3), idx)
        assert set(rr.stats.clusters) == {"local", "cloud"}
        for c in rr.stats.clusters.values():
            assert c.robj_nbytes > 0

    def test_extreme_skew_forces_stealing(self, points, stores):
        # All data in the cloud; the local cluster must steal everything
        # it processes.
        idx = split_dataset(points, points_format(4), stores, local_frac=0.0)
        clusters = [
            ClusterConfig("local", "local", 2),
            ClusterConfig("cloud", "cloud", 1),
        ]
        rr = ThreadedEngine(clusters, stores).run(KnnSpec(np.zeros(4), 3), idx)
        local = rr.stats.clusters["local"]
        assert local.jobs_stolen == local.jobs_processed

    def test_timers_populated(self, points, stores, two_clusters):
        idx = split_dataset(points, points_format(4), stores)
        rr = ThreadedEngine(two_clusters, stores).run(KMeansSpec(np.zeros((3, 4))), idx)
        assert rr.stats.total_s > 0
        # With in-memory stores a fast cluster may legitimately drain the
        # whole pool before the other cluster's workers start, so only
        # clusters that actually processed jobs must show processing time.
        assert sum(c.jobs_processed for c in rr.stats.clusters.values()) == len(
            idx.chunks
        )
        assert any(c.jobs_processed > 0 for c in rr.stats.clusters.values())
        for c in rr.stats.clusters.values():
            if c.jobs_processed:
                assert c.processing_s > 0
            assert c.retrieval_s >= 0


class TestEngineValidation:
    def test_requires_clusters(self, stores):
        with pytest.raises(ValueError):
            ThreadedEngine([], stores)

    def test_unique_cluster_names(self, stores):
        with pytest.raises(ValueError):
            ThreadedEngine(
                [ClusterConfig("x", "local", 1), ClusterConfig("x", "cloud", 1)], stores
            )

    def test_missing_store_rejected(self, points):
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        idx = split_dataset(points, points_format(4), stores, local_frac=0.5)
        engine = ThreadedEngine([ClusterConfig("local", "local", 1)], {"local": stores["local"]})
        with pytest.raises(ValueError):
            engine.run(KnnSpec(np.zeros(4), 3), idx)

    def test_custom_scheduler_factory(self, points, stores, two_clusters):
        idx = split_dataset(points, points_format(4), stores)
        engine = ThreadedEngine(
            two_clusters, stores, scheduler_factory=lambda jobs: RandomScheduler(jobs, seed=1)
        )
        rr = engine.run(KnnSpec(np.zeros(4), 4), idx)
        ref = knn_exact(points, np.zeros(4), 4)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])

    def test_worker_error_propagates(self, points, stores, two_clusters):
        idx = split_dataset(points, points_format(4), stores)

        class BrokenSpec(KnnSpec):
            def local_reduction(self, robj, group):
                raise RuntimeError("boom")

        engine = ThreadedEngine(two_clusters, stores)
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(BrokenSpec(np.zeros(4), 3), idx)
