"""Predicate pushdown at the head: planning, priority, soundness.

``plan_jobs`` sits between the index and the scheduler on every engine
(and in the simulator), so these tests pin its whole contract: pruning
only on proof, exact byte accounting, priority composition with the
locality scheduler, the ``verify`` soundness guard, and live/DES
agreement on bytes saved.
"""

import numpy as np
import pytest

from repro.apps.filtered import FilteredWordCountSpec, filtered_wordcount_exact
from repro.apps.wordcount import WordCountSpec
from repro.core.api import (
    GeneralizedReductionSpec,
    has_pushdown_predicate,
    has_pushdown_priority,
    supports_pushdown,
)
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import tokens_format
from repro.runtime import ClusterConfig, EngineOptions, make_engine
from repro.runtime.jobs import Job, jobs_from_index
from repro.runtime.pushdown import (
    PushdownPlan,
    PushdownSoundnessError,
    normalize_pushdown,
    plan_jobs,
)
from repro.runtime.scheduler import HeadScheduler
from repro.storage.local import MemoryStore

ENGINES = ("threaded", "process", "actor")


def sorted_token_env(n=8000, vocab=400, n_files=4, chunk_units=250):
    """Sorted tokens -> narrow per-chunk ranges -> pruning bites."""
    rng = np.random.default_rng(11)
    toks = np.sort(rng.integers(0, vocab, size=n))
    stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
    idx = write_dataset(
        toks, tokens_format(), stores["local"],
        n_files=n_files, chunk_units=chunk_units,
    )
    idx = distribute_dataset(
        idx, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
    )
    return toks, idx, stores


class TestNormalize:
    @pytest.mark.parametrize("raw,want", [
        (None, None), (False, None), ("off", None), ("", None), ("none", None),
        (True, "prune"), ("on", "prune"), ("prune", "prune"), ("PRUNE", "prune"),
        ("verify", "verify"),
    ])
    def test_canonical_forms(self, raw, want):
        assert normalize_pushdown(raw) == want

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="invalid pushdown mode"):
            normalize_pushdown("always")

    def test_engine_options_normalize(self):
        assert EngineOptions(pushdown=True).pushdown == "prune"
        assert EngineOptions(pushdown="off").pushdown is None
        with pytest.raises(ValueError):
            EngineOptions(pushdown="bogus")


class TestContractDetection:
    def test_base_spec_declares_nothing(self):
        spec = WordCountSpec()
        assert not has_pushdown_predicate(spec)
        assert not has_pushdown_priority(spec)
        assert not supports_pushdown(spec)

    def test_filtered_spec_declares_both(self):
        spec = FilteredWordCountSpec(0, 10)
        assert has_pushdown_predicate(spec)
        assert has_pushdown_priority(spec)
        assert supports_pushdown(spec)

    def test_partial_contract_counts(self):
        class OnlyRelevant(GeneralizedReductionSpec):
            def create_reduction_object(self):  # pragma: no cover
                raise NotImplementedError

            def local_reduction(self, robj, unit_group):  # pragma: no cover
                raise NotImplementedError

            def relevant(self, stats):
                return True

        spec = OnlyRelevant()
        assert has_pushdown_predicate(spec)
        assert not has_pushdown_priority(spec)
        assert supports_pushdown(spec)


class TestPlanJobs:
    def test_off_is_jobs_from_index(self):
        _toks, idx, _stores = sorted_token_env()
        plan = plan_jobs(idx, FilteredWordCountSpec(0, 10), None)
        assert plan.mode is None
        assert plan.pruned == [] and plan.n_reordered == 0
        assert [j.job_id for j in plan.jobs] == [
            j.job_id for j in jobs_from_index(idx)
        ]

    def test_no_contract_spec_passes_through(self):
        _toks, idx, _stores = sorted_token_env()
        plan = plan_jobs(idx, WordCountSpec(), "prune")
        assert plan.pruned == []
        assert len(plan.jobs) == len(idx.chunks)

    def test_prunes_only_provably_irrelevant(self):
        toks, idx, _stores = sorted_token_env()
        spec = FilteredWordCountSpec(100, 199)
        plan = plan_jobs(idx, spec, "prune")
        assert plan.mode == "prune"
        assert plan.n_pruned_chunks > 0
        assert len(plan.jobs) + plan.n_pruned_chunks == len(idx.chunks)
        for job in plan.pruned:
            st = job.chunk.stats
            assert st.maxs[0] < 100 or st.mins[0] > 199
        for job in plan.jobs:
            st = job.chunk.stats
            assert st.overlaps(0, 100, 199)

    def test_bytes_pruned_accounting(self):
        _toks, idx, _stores = sorted_token_env()
        plan = plan_jobs(idx, FilteredWordCountSpec(100, 199), "prune")
        assert plan.bytes_pruned == sum(
            j.chunk.wire_nbytes for j in plan.pruned
        )
        total = sum(c.wire_nbytes for c in idx.chunks)
        kept = sum(j.chunk.wire_nbytes for j in plan.jobs)
        assert plan.bytes_pruned + kept == total

    def test_chunks_without_stats_always_kept(self):
        rng = np.random.default_rng(12)
        toks = np.sort(rng.integers(0, 400, size=4000))
        store = MemoryStore()
        idx = write_dataset(toks, tokens_format(), store,
                            n_files=2, chunk_units=250, stats=False)
        plan = plan_jobs(idx, FilteredWordCountSpec(0, 10), "prune")
        assert plan.pruned == []
        assert len(plan.jobs) == len(idx.chunks)

    def test_survivors_carry_priority_and_reorder_count(self):
        _toks, idx, _stores = sorted_token_env()
        spec = FilteredWordCountSpec(100, 199)
        plan = plan_jobs(idx, spec, "prune")
        assert any(j.priority > 0 for j in plan.jobs)
        assert plan.n_reordered == 0 or plan.n_reordered >= 2  # swaps pair up

    def test_verify_requires_stores(self):
        _toks, idx, _stores = sorted_token_env()
        with pytest.raises(ValueError, match="requires the stores"):
            plan_jobs(idx, FilteredWordCountSpec(100, 199), "verify")

    def test_verify_passes_for_sound_predicate(self):
        _toks, idx, stores = sorted_token_env()
        plan = plan_jobs(
            idx, FilteredWordCountSpec(100, 199), "verify", stores=stores
        )
        assert plan.mode == "verify"
        assert plan.n_pruned_chunks > 0

    def test_verify_catches_lying_predicate(self):
        class LyingSpec(FilteredWordCountSpec):
            """Prunes every chunk -- including ones that contribute."""

            def relevant(self, stats):
                return False

        _toks, idx, stores = sorted_token_env()
        with pytest.raises(PushdownSoundnessError, match="not the identity"):
            plan_jobs(idx, LyingSpec(100, 199), "verify", stores=stores)

    def test_apply_to_records_counters(self):
        from repro.runtime.stats import RunStats

        _toks, idx, _stores = sorted_token_env()
        plan = plan_jobs(idx, FilteredWordCountSpec(100, 199), "prune")
        stats = RunStats()
        plan.apply_to(stats)
        assert stats.pushdown_mode == "prune"
        assert stats.n_pruned_chunks == plan.n_pruned_chunks
        assert stats.bytes_pruned == plan.bytes_pruned
        assert stats.n_reordered == plan.n_reordered
        row = stats.pushdown_rows()[0]
        assert row["mode"] == "prune"
        assert row["n_pruned_chunks"] == plan.n_pruned_chunks


class TestSchedulerPriority:
    def _jobs_with_priorities(self, prios):
        from repro.data.index import build_index

        idx = build_index(
            tokens_format(), [3] * len(prios), chunk_units=3, location="local"
        )
        return [
            Job(j.job_id, j.chunk, priority=prios[j.file_id])
            for j in jobs_from_index(idx)
        ]

    def test_high_priority_file_served_first(self):
        jobs = self._jobs_with_priorities([0.0, 0.9, 0.5])
        sched = HeadScheduler(jobs)
        order = []
        while True:
            batch = sched.request_jobs("local", 1)
            if not batch:
                break
            order.append(batch[0].file_id)
            sched.complete(batch[0])
        assert order == [1, 2, 0]

    def test_zero_priorities_keep_legacy_order(self):
        jobs = self._jobs_with_priorities([0.0, 0.0, 0.0])
        sched = HeadScheduler(jobs)
        first = sched.request_jobs("local", 1)[0]
        assert first.file_id == 0

    def test_priority_yields_to_locality(self):
        """A cluster still takes its local data before remote
        high-priority files -- priority refines, never overrides,
        the paper's locality-first policy."""
        from repro.data.index import build_index

        idx = build_index(tokens_format(), [3, 3], chunk_units=3)
        placed = idx.with_placement({"local": 0.5, "cloud": 0.5})
        jobs = [
            Job(j.job_id, j.chunk,
                priority=0.9 if j.location == "cloud" else 0.0)
            for j in jobs_from_index(placed)
        ]
        sched = HeadScheduler(jobs)
        batch = sched.request_jobs("local", 1)
        assert batch[0].location == "local"


class TestEngineIntegration:
    @pytest.mark.parametrize("name", ENGINES)
    def test_pruned_chunks_never_fetched(self, name):
        toks, idx, stores = sorted_token_env()
        spec = FilteredWordCountSpec(100, 199)
        clusters = [
            ClusterConfig("local", "local", 2, 2),
            ClusterConfig("cloud", "cloud", 2, 2),
        ]
        off = make_engine(name, clusters, stores, batch_size=2).run(spec, idx)
        on = make_engine(
            name, clusters, stores, batch_size=2, pushdown="prune"
        ).run(spec, idx)
        ref = filtered_wordcount_exact(toks, 100, 199)
        assert off.result == ref and on.result == ref
        assert on.stats.n_pruned_chunks > 0
        assert on.stats.jobs_processed == (
            len(idx.chunks) - on.stats.n_pruned_chunks
        )
        assert on.stats.bytes_wire < off.stats.bytes_wire
        assert on.stats.bytes_wire + on.stats.bytes_pruned == off.stats.bytes_wire

    def test_sim_and_live_agree_on_bytes_pruned(self):
        from repro.sim.calibration import AppSimProfile, ResourceParams
        from repro.sim.simrun import SimClusterConfig, simulate_run

        toks, idx, stores = sorted_token_env()
        spec = FilteredWordCountSpec(100, 199)
        clusters = [
            ClusterConfig("local", "local", 2, 2),
            ClusterConfig("cloud", "cloud", 2, 2),
        ]
        live = make_engine(
            "threaded", clusters, stores, batch_size=2, pushdown="prune"
        ).run(spec, idx)
        profile = AppSimProfile(
            name="filtered-wc", unit_nbytes=8,
            compute_s_per_unit=1e-7, robj_nbytes=1024,
        )
        params = ResourceParams()
        sim_clusters = [
            SimClusterConfig("local", "local", 2),
            SimClusterConfig("cloud", "cloud", 2),
        ]
        sim = simulate_run(
            idx, sim_clusters, profile, params, pushdown=spec
        )
        assert sim.stats.n_pruned_chunks == live.stats.n_pruned_chunks
        assert sim.stats.bytes_pruned == live.stats.bytes_pruned
