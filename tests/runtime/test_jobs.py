"""Unit tests for jobs and pools."""

import pytest

from repro.data.formats import tokens_format
from repro.data.index import build_index
from repro.runtime.jobs import Job, LocalJobPool, jobs_from_index


@pytest.fixture
def index():
    return build_index(tokens_format(), [10, 10], chunk_units=4).with_placement(
        {"local": 0.5, "cloud": 0.5}
    )


class TestJobsFromIndex:
    def test_one_job_per_chunk(self, index):
        jobs = jobs_from_index(index)
        assert len(jobs) == len(index.chunks)
        assert [j.job_id for j in jobs] == [c.chunk_id for c in index.chunks]

    def test_job_properties_delegate_to_chunk(self, index):
        job = jobs_from_index(index)[0]
        chunk = index.chunks[0]
        assert job.location == chunk.location
        assert job.file_id == chunk.file_id
        assert job.nbytes == chunk.nbytes
        assert job.n_units == chunk.n_units

    def test_locations_follow_placement(self, index):
        jobs = jobs_from_index(index)
        assert {j.location for j in jobs} == {"local", "cloud"}


class TestLocalJobPool:
    def test_fifo_order(self, index):
        jobs = jobs_from_index(index)
        pool = LocalJobPool()
        pool.add(jobs[:3])
        assert pool.try_get() is jobs[0]
        assert pool.try_get() is jobs[1]

    def test_empty_returns_none(self):
        assert LocalJobPool().try_get() is None

    def test_len(self, index):
        pool = LocalJobPool()
        pool.add(jobs_from_index(index)[:4])
        assert len(pool) == 4
        pool.try_get()
        assert len(pool) == 3
