"""Unit tests for the head scheduler's assignment policy."""

import pytest

from repro.data.formats import tokens_format
from repro.data.index import build_index
from repro.runtime.jobs import jobs_from_index
from repro.runtime.scheduler import HeadScheduler, RandomScheduler, StaticScheduler


def make_jobs(n_files=4, units_per_file=12, chunk_units=3, local_frac=0.5):
    idx = build_index(tokens_format(), [units_per_file] * n_files, chunk_units=chunk_units)
    fractions = {}
    if local_frac > 0:
        fractions["local"] = local_frac
    if local_frac < 1:
        fractions["cloud"] = 1 - local_frac
    return jobs_from_index(idx.with_placement(fractions))


class TestLocality:
    def test_local_jobs_first(self):
        sched = HeadScheduler(make_jobs())
        batch = sched.request_jobs("local", 4)
        assert all(j.location == "local" for j in batch)

    def test_cloud_cluster_gets_cloud_jobs_first(self):
        sched = HeadScheduler(make_jobs())
        batch = sched.request_jobs("cloud", 4)
        assert all(j.location == "cloud" for j in batch)

    def test_batch_is_consecutive_chunks_of_one_file(self):
        sched = HeadScheduler(make_jobs())
        batch = sched.request_jobs("local", 3)
        assert len({j.file_id for j in batch}) == 1
        ids = [j.job_id for j in batch]
        assert ids == list(range(ids[0], ids[0] + len(ids)))


class TestStealing:
    def test_steals_only_after_local_exhausted(self):
        sched = HeadScheduler(make_jobs())
        local_jobs = []
        while True:
            batch = sched.request_jobs("local", 4)
            if not batch or batch[0].location != "local":
                break
            local_jobs.extend(batch)
        # First non-local batch is stolen from the cloud.
        assert all(j.location == "cloud" for j in batch)
        assert sched.stolen_counts.get("local", 0) >= len(batch)

    def test_steal_prefers_least_contended_file(self):
        jobs = make_jobs(n_files=2, local_frac=0.0)  # all cloud
        sched = HeadScheduler(jobs)
        # Cloud grabs from file 0 and holds it active (not completed).
        b0 = sched.request_jobs("cloud", 2)
        assert {j.file_id for j in b0} == {0}
        # Local steals: must pick file 1 (0 active readers) over file 0.
        b1 = sched.request_jobs("local", 2)
        assert {j.file_id for j in b1} == {1}

    def test_completion_releases_contention(self):
        jobs = make_jobs(n_files=2, local_frac=0.0)
        sched = HeadScheduler(jobs)
        b0 = sched.request_jobs("cloud", 2)
        for j in b0:
            sched.complete(j)
        # With file 0 released, both files have 0 readers; tie-break by id.
        b1 = sched.request_jobs("local", 1)
        assert b1[0].file_id == 0


class TestAccounting:
    def test_every_job_assigned_exactly_once(self):
        jobs = make_jobs()
        sched = HeadScheduler(jobs)
        seen = []
        while True:
            batch = sched.request_jobs("local", 3)
            if not batch:
                break
            seen.extend(batch)
            for j in batch:
                sched.complete(j)
        assert sorted(j.job_id for j in seen) == sorted(j.job_id for j in jobs)
        assert sched.all_done

    def test_remaining_and_outstanding(self):
        sched = HeadScheduler(make_jobs())
        total = sched.remaining
        batch = sched.request_jobs("local", 3)
        assert sched.remaining == total - 3
        assert sched.outstanding == 3
        sched.complete(batch[0])
        assert sched.outstanding == 2

    def test_empty_when_exhausted(self):
        sched = HeadScheduler(make_jobs(n_files=1, units_per_file=3, chunk_units=3, local_frac=1.0))
        assert len(sched.request_jobs("local", 10)) == 1
        assert sched.request_jobs("local", 1) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            HeadScheduler(make_jobs()).request_jobs("local", 0)

    def test_complete_without_assignment_raises(self):
        jobs = make_jobs()
        sched = HeadScheduler(jobs)
        with pytest.raises(RuntimeError):
            sched.complete(jobs[0])

    def test_assigned_counts_tracked(self):
        sched = HeadScheduler(make_jobs())
        sched.request_jobs("local", 4)
        sched.request_jobs("cloud", 4)
        assert sched.assigned_counts == {"local": 4, "cloud": 4}


class TestReassign:
    def test_reassigned_job_returns_to_pool(self):
        sched = HeadScheduler(make_jobs())
        total = sched.remaining
        batch = sched.request_jobs("local", 3)
        sched.reassign(batch[0])
        assert sched.remaining == total - 2
        assert sched.outstanding == 2
        assert sched.n_reassigned == 1
        assert batch[0].job_id in sched.requeued_ids

    def test_reassigned_job_is_next_from_its_file(self):
        """Requeued at the *front* of its file, so the next batch from
        that file starts with it (keeps reads contiguous)."""
        sched = HeadScheduler(make_jobs(n_files=1, local_frac=1.0))
        batch = sched.request_jobs("local", 2)
        sched.reassign(batch[1])
        again = sched.request_jobs("local", 1)
        assert again[0].job_id == batch[1].job_id

    def test_reassigned_job_stealable_by_other_cluster(self):
        """A dead local worker's job can be recovered by the cloud."""
        sched = HeadScheduler(make_jobs())
        # Drain every unassigned job first.
        held = []
        for loc in ("local", "cloud"):
            while True:
                b = sched.request_jobs(loc, 4)
                if not b:
                    break
                held.extend(b)
        victim = held.pop(0)
        assert victim.location == "local"
        sched.reassign(victim)
        recovered = sched.request_jobs("cloud", 4)
        assert [j.job_id for j in recovered] == [victim.job_id]
        assert sched.stolen_counts.get("cloud", 0) >= 1
        for j in held + recovered:
            sched.complete(j)
        assert sched.all_done

    def test_reassign_releases_file_contention(self):
        jobs = make_jobs(n_files=2, local_frac=0.0)
        sched = HeadScheduler(jobs)
        b0 = sched.request_jobs("cloud", 2)
        assert {j.file_id for j in b0} == {0}
        for j in b0:
            sched.reassign(j)
        # File 0 has no active readers again; tie-break picks it first.
        b1 = sched.request_jobs("local", 1)
        assert b1[0].file_id == 0

    def test_reassign_without_outstanding_raises(self):
        jobs = make_jobs()
        with pytest.raises(RuntimeError):
            HeadScheduler(jobs).reassign(jobs[0])

    def test_reassign_then_complete_counts_once(self):
        """A requeued job completes exactly once: outstanding returns to
        zero and a second complete() is rejected."""
        sched = HeadScheduler(make_jobs(n_files=1, local_frac=1.0))
        batch = sched.request_jobs("local", 1)
        sched.reassign(batch[0])
        again = sched.request_jobs("local", 1)
        sched.complete(again[0])
        while True:
            b = sched.request_jobs("local", 4)
            if not b:
                break
            for j in b:
                sched.complete(j)
        assert sched.all_done
        with pytest.raises(RuntimeError):
            sched.complete(batch[0])

    def test_random_scheduler_reassign_keeps_order_coherent(self):
        jobs = make_jobs()
        sched = RandomScheduler(jobs, seed=1)
        batch = sched.request_jobs("local", 4)
        for j in batch:
            sched.reassign(j)
        seen = []
        while True:
            b = sched.request_jobs("cloud", 4)
            if not b:
                break
            seen.extend(b)
            for j in b:
                sched.complete(j)
        assert sorted(j.job_id for j in seen) == sorted(j.job_id for j in jobs)
        assert sched.all_done


class TestStaticScheduler:
    def test_never_steals(self):
        sched = StaticScheduler(make_jobs())
        seen = []
        while True:
            batch = sched.request_jobs("local", 4)
            if not batch:
                break
            seen.extend(batch)
            for j in batch:
                sched.complete(j)
        assert seen and all(j.location == "local" for j in seen)
        # Cloud-resident jobs remain for the cloud cluster.
        assert sched.remaining > 0

    def test_both_sites_drain_their_own_jobs(self):
        jobs = make_jobs()
        sched = StaticScheduler(jobs)
        for loc in ("local", "cloud"):
            while True:
                batch = sched.request_jobs(loc, 4)
                if not batch:
                    break
                for j in batch:
                    sched.complete(j)
        assert sched.all_done

    def test_empty_for_dataless_site(self):
        jobs = make_jobs(local_frac=1.0)
        sched = StaticScheduler(jobs)
        assert sched.request_jobs("cloud", 4) == []


class TestRandomScheduler:
    def test_assigns_all_jobs_once(self):
        jobs = make_jobs()
        sched = RandomScheduler(jobs, seed=3)
        seen = []
        while True:
            batch = sched.request_jobs("local", 3)
            if not batch:
                break
            seen.extend(batch)
            for j in batch:
                sched.complete(j)
        assert sorted(j.job_id for j in seen) == sorted(j.job_id for j in jobs)

    def test_ignores_locality(self):
        # With a 50/50 split and a fixed seed, the first few random
        # batches mix locations (overwhelmingly likely; seed pinned).
        sched = RandomScheduler(make_jobs(n_files=8, units_per_file=12), seed=0)
        locations = {j.location for j in sched.request_jobs("local", 10)}
        assert locations == {"local", "cloud"}

    def test_deterministic_for_seed(self):
        a = RandomScheduler(make_jobs(), seed=5).request_jobs("local", 6)
        b = RandomScheduler(make_jobs(), seed=5).request_jobs("local", 6)
        assert [j.job_id for j in a] == [j.job_id for j in b]


class TestBreakerDeprioritization:
    def make_replicated_jobs(self):
        """50/50 placement, every chunk replicated on the other site."""
        import dataclasses

        from repro.data.chunks import ChunkSource

        jobs = make_jobs()
        out = []
        for j in jobs:
            other = "cloud" if j.location == "local" else "local"
            chunk = dataclasses.replace(
                j.chunk, replicas=(ChunkSource(other, j.chunk.key),)
            )
            out.append(dataclasses.replace(j, chunk=chunk))
        return out

    def test_without_health_behavior_is_unchanged(self):
        plain = HeadScheduler(make_jobs())
        replicated = HeadScheduler(self.make_replicated_jobs())
        a = [j.job_id for j in plain.request_jobs("local", 6)]
        b = [j.job_id for j in replicated.request_jobs("local", 6)]
        assert a == b

    def test_blocked_files_assigned_last(self):
        # Chunks without replicas: a file whose ONLY source sits behind
        # an open breaker is deprioritized below every healthy file.
        open_locs = set()
        sched = HeadScheduler(make_jobs(local_frac=0.5))
        sched.attach_health(lambda: open_locs)
        open_locs.add("local")
        # A local cluster asks for work: its local files are all behind
        # the open breaker, so the least-contended *healthy* choice is
        # preferred when it steals.
        batch = sched.request_jobs("cloud", 4)
        assert all(j.location == "cloud" for j in batch)
        # Stealing from the local cluster now prefers cloud files too.
        steal = sched.request_jobs("local", 2)
        assert all(j.location == "cloud" for j in steal)

    def test_replicated_files_are_not_blocked(self):
        # With a replica on the healthy site, an open breaker on the
        # primary does not deprioritize the file (a fetch can fail over).
        open_locs = {"local"}
        sched = HeadScheduler(self.make_replicated_jobs())
        sched.attach_health(lambda: open_locs)
        steal = sched.request_jobs("local", 2)
        assert all(j.location == "local" for j in steal)

    def test_blocked_still_assigned_when_nothing_else_remains(self):
        open_locs = {"local", "cloud"}
        sched = HeadScheduler(make_jobs())
        sched.attach_health(lambda: open_locs)
        n = 0
        while True:
            batch = sched.request_jobs("local", 4)
            if not batch:
                break
            n += len(batch)
            for j in batch:
                sched.complete(j)
        assert n == sched.assigned_counts["local"]
        assert sched.all_done
