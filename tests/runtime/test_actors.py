"""Unit/integration tests for the actor-based (message-passing) engine."""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.apps.knn import KnnSpec, knn_exact
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import points_format, tokens_format
from repro.data.generator import generate_points
from repro.runtime.actors import ActorEngine
from repro.runtime.engine import ClusterConfig, ThreadedEngine


def split_dataset(units, fmt, stores, local_frac=0.5):
    idx = write_dataset(units, fmt, stores["local"], n_files=6, chunk_units=max(1, len(units) // 18))
    fractions = {}
    if local_frac > 0:
        fractions["local"] = local_frac
    if local_frac < 1:
        fractions["cloud"] = 1 - local_frac
    return distribute_dataset(idx, stores, fractions, stores["local"])


@pytest.fixture
def clusters():
    return [
        ClusterConfig("local", "local", n_workers=2),
        ClusterConfig("cloud", "cloud", n_workers=2, link_latency_s=0.002),
    ]


class TestCorrectness:
    def test_knn(self, points, stores, clusters):
        idx = split_dataset(points, points_format(4), stores)
        q = np.full(4, 0.3)
        rr = ActorEngine(clusters, stores).run(KnnSpec(q, 6), idx)
        ref = knn_exact(points, q, 6)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])

    def test_kmeans(self, points, stores, clusters):
        idx = split_dataset(points, points_format(4), stores, local_frac=1 / 3)
        cents = generate_points(4, 4, seed=91)
        rr = ActorEngine(clusters, stores).run(KMeansSpec(cents), idx)
        ref = lloyd_step(points, cents)
        np.testing.assert_allclose(rr.result.centroids, ref.centroids)

    def test_wordcount_single_cluster(self, tokens, stores):
        idx = split_dataset(tokens, tokens_format(), stores, local_frac=1.0)
        engine = ActorEngine([ClusterConfig("local", "local", 3)], stores)
        rr = engine.run(WordCountSpec(), idx)
        assert rr.result == wordcount_exact(tokens)

    def test_agrees_with_threaded_engine(self, points, stores, clusters):
        idx = split_dataset(points, points_format(4), stores)
        cents = generate_points(3, 4, seed=92)
        actor = ActorEngine(clusters, stores).run(KMeansSpec(cents), idx)
        threaded = ThreadedEngine(clusters, stores).run(KMeansSpec(cents), idx)
        np.testing.assert_allclose(
            actor.result.centroids, threaded.result.centroids
        )
        assert actor.result.sse == pytest.approx(threaded.result.sse)


class TestProtocol:
    def test_all_jobs_processed_once(self, points, stores, clusters):
        idx = split_dataset(points, points_format(4), stores)
        rr = ActorEngine(clusters, stores).run(KnnSpec(np.zeros(4), 3), idx)
        assert rr.stats.jobs_processed == len(idx.chunks)

    def test_stats_populated(self, points, stores, clusters):
        idx = split_dataset(points, points_format(4), stores)
        rr = ActorEngine(clusters, stores).run(KnnSpec(np.zeros(4), 3), idx)
        assert set(rr.stats.clusters) == {"local", "cloud"}
        for c in rr.stats.clusters.values():
            assert c.robj_nbytes > 0
            assert c.n_workers == 2
        assert rr.stats.total_s > 0

    def test_channel_latency_slows_refills(self, points, stores):
        idx = split_dataset(points, points_format(4), stores, local_frac=1.0)
        fast = ActorEngine(
            [ClusterConfig("local", "local", 2)], stores, batch_size=1
        ).run(KnnSpec(np.zeros(4), 3), idx)
        slow = ActorEngine(
            [ClusterConfig("local", "local", 2, link_latency_s=0.01)],
            stores, batch_size=1,
        ).run(KnnSpec(np.zeros(4), 3), idx)
        assert slow.stats.total_s > fast.stats.total_s

    def test_worker_error_propagates(self, points, stores, clusters):
        idx = split_dataset(points, points_format(4), stores)

        class Broken(KnnSpec):
            def local_reduction(self, robj, group):
                raise RuntimeError("actor boom")

        with pytest.raises(RuntimeError, match="actor boom"):
            ActorEngine(clusters, stores).run(Broken(np.zeros(4), 3), idx)

    def test_validation(self, stores):
        with pytest.raises(ValueError):
            ActorEngine([], stores)
        with pytest.raises(ValueError):
            ActorEngine(
                [ClusterConfig("x", "local", 1), ClusterConfig("x", "cloud", 1)],
                stores,
            )
