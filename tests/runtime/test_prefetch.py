"""Tests for the prefetch pipeline, fail-fast shutdown, and master refill."""

import threading
import time

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import points_format, tokens_format
from repro.data.generator import generate_points, generate_tokens
from repro.runtime.engine import ClusterConfig, ThreadedEngine, _Master
from repro.runtime.jobs import jobs_from_index
from repro.runtime.scheduler import HeadScheduler
from repro.storage.cache import ChunkCache
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store


def split_dataset(units, fmt, stores, local_frac=0.5, n_files=6, chunk_units=200):
    idx = write_dataset(
        units, fmt, stores["local"], n_files=n_files, chunk_units=chunk_units
    )
    fractions = {}
    if local_frac > 0:
        fractions["local"] = local_frac
    if local_frac < 1:
        fractions["cloud"] = 1 - local_frac
    return distribute_dataset(idx, stores, fractions, stores["local"])


def latency_stores(latency_s=0.002):
    return {
        "local": MemoryStore(location="local"),
        "cloud": SimulatedS3Store(
            profile=S3Profile(request_latency_s=latency_s)
        ),
    }


class TestPrefetchCorrectness:
    def test_wordcount_exact_with_prefetch(self, tokens, stores):
        idx = split_dataset(tokens, tokens_format(), stores)
        engine = ThreadedEngine(
            [
                ClusterConfig("local", "local", 2),
                ClusterConfig("cloud", "cloud", 2),
            ],
            stores,
            prefetch=True,
        )
        rr = engine.run(WordCountSpec(), idx)
        assert rr.result == wordcount_exact(tokens)
        assert rr.stats.jobs_processed == len(idx.chunks)

    def test_results_bit_identical_prefetch_on_vs_off(self, points, stores):
        """One worker folds identical groups in identical order."""
        idx = split_dataset(points, points_format(4), stores, local_frac=0.0)
        cents = generate_points(4, 4, seed=5)
        cluster = [ClusterConfig("cloud", "cloud", 1)]
        off = ThreadedEngine(cluster, stores).run(KMeansSpec(cents), idx)
        on = ThreadedEngine(cluster, stores, prefetch=True).run(
            KMeansSpec(cents), idx
        )
        assert np.array_equal(off.result.centroids, on.result.centroids)
        assert np.array_equal(off.robj.data, on.robj.data)

    def test_prefetch_stats_populated(self, tokens):
        stores = latency_stores()
        idx = split_dataset(tokens, tokens_format(), stores, local_frac=0.0)
        engine = ThreadedEngine(
            [ClusterConfig("cloud", "cloud", 1)], stores, prefetch=True
        )
        rr = engine.run(WordCountSpec(), idx)
        (w,) = rr.stats.clusters["cloud"].workers
        # Every job after the first serial fetch went through the pipeline.
        assert w.prefetch_hits + w.prefetch_misses == w.jobs_processed - 1
        assert w.overlap_s >= 0.0
        assert w.retrieval_s >= 0.0
        assert w.cache_hits == 0
        assert w.cache_misses == w.jobs_processed

    def test_pipeline_rows_surface_counters(self, tokens):
        stores = latency_stores()
        idx = split_dataset(tokens, tokens_format(), stores, local_frac=0.0)
        engine = ThreadedEngine(
            [ClusterConfig("cloud", "cloud", 2)], stores, prefetch=True
        )
        rr = engine.run(WordCountSpec(), idx)
        (row,) = rr.stats.pipeline_rows()
        assert row["cluster"] == "cloud"
        assert row["prefetch_hits"] + row["prefetch_misses"] > 0
        assert row["cache_misses"] == rr.stats.jobs_processed


class TestChunkCache:
    def test_second_pass_hits_cache(self, tokens, stores):
        idx = split_dataset(tokens, tokens_format(), stores)
        cache = ChunkCache(64 << 20)
        engine = ThreadedEngine(
            [
                ClusterConfig("local", "local", 2),
                ClusterConfig("cloud", "cloud", 2),
            ],
            stores,
            chunk_cache=cache,
        )
        first = engine.run(WordCountSpec(), idx)
        assert first.stats.cache_hits == 0
        second = engine.run(WordCountSpec(), idx)
        assert second.result == first.result == wordcount_exact(tokens)
        assert second.stats.cache_hits == len(idx.chunks)
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hit_rate == 1.0

    def test_cache_with_prefetch(self, tokens, stores):
        idx = split_dataset(tokens, tokens_format(), stores, local_frac=0.0)
        cache = ChunkCache(64 << 20)
        engine = ThreadedEngine(
            [ClusterConfig("cloud", "cloud", 2)],
            stores,
            prefetch=True,
            chunk_cache=cache,
        )
        engine.run(WordCountSpec(), idx)
        rr = engine.run(WordCountSpec(), idx)
        assert rr.result == wordcount_exact(tokens)
        assert rr.stats.cache_hits == len(idx.chunks)


class _PoisonSpec(WordCountSpec):
    """Raises after ``after`` local reductions (across all workers)."""

    def __init__(self, after: int) -> None:
        super().__init__()
        self._after = after
        self._calls = 0
        self._lock = threading.Lock()

    def local_reduction(self, robj, group):
        with self._lock:
            self._calls += 1
            if self._calls > self._after:
                raise RuntimeError("poisoned group")
        super().local_reduction(robj, group)


class TestFailFast:
    @pytest.mark.parametrize("prefetch", [False, True])
    def test_worker_error_aborts_run_promptly(self, tokens, prefetch):
        stores = latency_stores(latency_s=0.02)
        idx = split_dataset(
            tokens, tokens_format(), stores, local_frac=0.0,
            n_files=8, chunk_units=50,
        )
        n_jobs = len(idx.chunks)
        assert n_jobs >= 20  # enough left to skip for the timing check
        engine = ThreadedEngine(
            [ClusterConfig("cloud", "cloud", 2)],
            stores,
            prefetch=prefetch,
            group_nbytes=1 << 30,  # one group per chunk
        )
        spec = _PoisonSpec(after=3)
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="poisoned group"):
            engine.run(spec, idx)
        elapsed = time.monotonic() - t0
        # Draining all the jobs serially would cost >= n_jobs * 20ms per
        # worker; the stop event must abort far sooner than that.
        assert elapsed < n_jobs * 0.02 * 0.5


class TestMasterRefill:
    def test_concurrent_requesters_overlap_link_latency(self, tokens, stores):
        """The head RTT is paid outside the refill lock, so two workers
        asking simultaneously wait ~1 RTT, not 2."""
        idx = split_dataset(tokens, tokens_format(), stores, local_frac=1.0)
        latency = 0.15
        cluster = ClusterConfig("local", "local", 2, link_latency_s=latency)
        master = _Master(
            cluster, HeadScheduler(jobs_from_index(idx)), threading.Lock(),
            batch_size=4,
        )
        results = []

        def ask():
            results.append(master.get_job())

        threads = [threading.Thread(target=ask) for _ in range(2)]
        t0 = time.monotonic()
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        elapsed = time.monotonic() - t0
        assert all(j is not None for j in results)
        assert elapsed < 1.8 * latency  # serialized RTTs would be >= 2x
