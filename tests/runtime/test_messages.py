"""Unit tests for control-plane channels and message types."""

import threading
import time

from repro.runtime.jobs import Job
from repro.runtime.messages import AssignJobs, Channel, RequestJobs, RobjUpload, Shutdown


class TestChannel:
    def test_fifo_delivery(self):
        ch = Channel()
        ch.send("a")
        ch.send("b")
        assert ch.recv() == "a"
        assert ch.recv() == "b"

    def test_latency_delays_delivery(self):
        ch = Channel(latency_s=0.05)
        t0 = time.monotonic()
        ch.send("msg")
        assert ch.recv() == "msg"
        assert time.monotonic() - t0 >= 0.045

    def test_zero_latency_immediate(self):
        ch = Channel()
        t0 = time.monotonic()
        ch.send("msg")
        ch.recv()
        assert time.monotonic() - t0 < 0.05

    def test_cross_thread(self):
        ch = Channel()
        got = []

        def consumer():
            got.append(ch.recv(timeout=2))

        th = threading.Thread(target=consumer)
        th.start()
        ch.send(Shutdown())
        th.join()
        assert isinstance(got[0], Shutdown)

    def test_len(self):
        ch = Channel()
        ch.send(1)
        ch.send(2)
        assert len(ch) == 2


class TestMessageTypes:
    def test_request_jobs_fields(self):
        msg = RequestJobs(cluster="c", location="cloud", max_jobs=4)
        assert msg.location == "cloud"

    def test_assign_jobs_empty_means_done(self):
        assert AssignJobs(jobs=()).jobs == ()

    def test_robj_upload(self):
        msg = RobjUpload(cluster="c", payload=b"xyz", nbytes=3)
        assert msg.nbytes == len(msg.payload)
