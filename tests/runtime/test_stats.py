"""Unit tests for execution-time accounting."""

from repro.runtime.stats import ClusterStats, RunStats, WorkerStats


def make_cluster():
    c = ClusterStats("local", "local")
    c.workers.append(WorkerStats(processing_s=10.0, retrieval_s=4.0, sync_s=1.0,
                                 jobs_processed=3, jobs_stolen=1))
    c.workers.append(WorkerStats(processing_s=14.0, retrieval_s=6.0, sync_s=3.0,
                                 jobs_processed=5, jobs_stolen=0))
    return c


class TestClusterStats:
    def test_means_are_per_worker(self):
        c = make_cluster()
        assert c.processing_s == 12.0
        assert c.retrieval_s == 5.0
        assert c.sync_s == 2.0
        assert c.total_s == 19.0

    def test_job_counts_sum(self):
        c = make_cluster()
        assert c.jobs_processed == 8
        assert c.jobs_stolen == 1

    def test_empty_cluster_zeroes(self):
        c = ClusterStats("x", "local")
        assert c.processing_s == 0.0
        assert c.total_s == 0.0
        assert c.n_workers == 0

    def test_worker_busy(self):
        w = WorkerStats(processing_s=2.0, retrieval_s=3.0)
        assert w.busy_s == 5.0


class TestRunStats:
    def test_aggregates_across_clusters(self):
        rs = RunStats()
        rs.clusters["a"] = make_cluster()
        rs.clusters["b"] = make_cluster()
        assert rs.jobs_processed == 16
        assert rs.jobs_stolen == 2

    def test_breakdown_rows(self):
        rs = RunStats()
        rs.clusters["a"] = make_cluster()
        rows = rs.breakdown_rows()
        assert rows == [
            {
                "cluster": "local",
                "processing_s": 12.0,
                "retrieval_s": 5.0,
                "sync_s": 2.0,
                "ipc_s": 0.0,
                "ser_s": 0.0,
                "total_s": 19.0,
                "n_retries": 0,
                "n_errors": 0,
                "bytes_retried": 0,
            }
        ]

    def test_ipc_rows_and_aggregates(self):
        rs = RunStats()
        c = make_cluster()
        c.workers[0].ipc_s = 0.2
        c.workers[0].ser_s = 0.4
        c.workers[0].shm_nbytes = 1000
        c.workers[1].ipc_s = 0.6
        c.workers[1].ser_s = 0.0
        c.workers[1].shm_nbytes = 3000
        rs.clusters["a"] = c
        assert c.ipc_s == 0.4    # mean per worker, like the other bars
        assert c.ser_s == 0.2
        assert c.shm_nbytes == 4000
        assert rs.shm_nbytes == 4000
        assert c.total_s == 19.0 + 0.4 + 0.2
        assert rs.ipc_rows() == [
            {"cluster": "local", "ipc_s": 0.4, "ser_s": 0.2, "shm_nbytes": 4000}
        ]

    def test_fault_rows_and_aggregates(self):
        rs = RunStats()
        c = make_cluster()
        c.n_retries = 3
        c.n_errors = 1
        c.bytes_retried = 512
        c.workers[0].failed = True
        c.workers[1].jobs_recovered = 2
        c.workers[1].recovery_s = 1.5
        rs.clusters["a"] = c
        rs.n_requeued_jobs = 2
        assert rs.n_retries == 3
        assert rs.n_errors == 1
        assert rs.bytes_retried == 512
        assert rs.n_failed_workers == 1
        assert rs.jobs_recovered == 2
        assert rs.recovery_s == 1.5
        rows = rs.fault_rows()
        assert rows == [
            {
                "cluster": "local",
                "n_retries": 3,
                "n_errors": 1,
                "bytes_retried": 512,
                "workers_failed": 1,
                "jobs_recovered": 2,
                "recovery_s": 1.5,
                "n_failovers": 0,
                "n_hedges": 0,
                "hedge_wins": 0,
                "n_breaker_skips": 0,
                "n_abandoned": 0,
                "n_parity_decodes": 0,
                "wasted_frag_bytes": 0,
                "fetch_p95_ms": 0.0,
            }
        ]
