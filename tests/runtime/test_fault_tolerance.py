"""End-to-end fault tolerance in the threaded engine.

Chaos tests: seeded fault injection on the cloud store, retry/backoff on
the fetch path, worker-crash containment with reduction-object recovery.
All injection is hash-seeded, so every test here is deterministic.
"""

import threading

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.bursting.session import BurstingSession
from repro.data.formats import points_format, tokens_format
from repro.data.generator import generate_points, generate_tokens
from repro.data.index import build_index
from repro.runtime.engine import _Master, ClusterConfig
from repro.runtime.jobs import jobs_from_index
from repro.runtime.scheduler import HeadScheduler
from repro.storage.faults import (
    FaultInjectingStore,
    FaultSpec,
    PermanentStorageError,
)
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryPolicy

FAST_RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.0, max_delay_s=0.0)


def make_session(points, *, fault_spec=None, retry=None, crash_plan=None,
                 prefetch=False, retrieval_threads=2):
    stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
    # min_part_nbytes=0 keeps every fetch split across retrieval threads
    # even for these tiny chunks; the pool round-trips yield the GIL, so
    # both clusters' workers reliably claim jobs (the crash tests need
    # the cloud workers to actually process some).
    session = BurstingSession.from_units(
        points, points_format(4), stores, local_fraction=0.5,
        retry=retry, crash_plan=crash_plan, prefetch=prefetch,
        retrieval_threads=retrieval_threads, min_part_nbytes=0,
    )
    if fault_spec is not None:
        # Wrap *after* the dataset is written and distributed, so the
        # setup path is clean and only the run's fetches see faults.
        faulty = FaultInjectingStore(stores["cloud"], fault_spec)
        session.stores["cloud"] = faulty
        session.engine.stores["cloud"] = faulty
    return session


class TestTransientFaults:
    def test_retries_preserve_result(self, points):
        """Seeded transient faults (p=0.3) on the cloud store: the run
        retries through them and the result is unchanged."""
        clean = make_session(points).run(
            KMeansSpec(generate_points(3, 4, seed=81))
        )
        session = make_session(
            points, fault_spec=FaultSpec(transient_p=0.3, seed=7),
            retry=FAST_RETRY,
        )
        rr = session.run(KMeansSpec(generate_points(3, 4, seed=81)))
        np.testing.assert_allclose(
            rr.result.centroids, clean.result.centroids
        )
        assert rr.stats.n_retries > 0
        assert rr.stats.n_failed_workers == 0
        assert rr.stats.n_requeued_jobs == 0
        assert session.engine.stores["cloud"].n_transient > 0

    def test_wordcount_exact_under_faults(self):
        """Integer reduction: exact equality through injected faults,
        with the prefetch pipeline on."""
        tokens = generate_tokens(30_000, 500, seed=3)
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        session = BurstingSession.from_units(
            tokens, tokens_format(), stores, local_fraction=0.5,
            retry=FAST_RETRY, prefetch=True,
        )
        faulty = FaultInjectingStore(
            stores["cloud"], FaultSpec(transient_p=0.3, seed=17)
        )
        session.stores["cloud"] = faulty
        session.engine.stores["cloud"] = faulty
        rr = session.run(WordCountSpec())
        assert rr.result == wordcount_exact(tokens)
        assert rr.stats.n_retries > 0

    def test_counters_deterministic_for_seed(self, points):
        """Same seed, same faults, same counters -- twice."""
        def run():
            session = make_session(
                points, fault_spec=FaultSpec(transient_p=0.3, seed=7),
                retry=FAST_RETRY,
            )
            rr = session.run(KMeansSpec(generate_points(3, 4, seed=81)))
            store = session.engine.stores["cloud"]
            return (rr.stats.n_retries, rr.stats.bytes_retried,
                    rr.stats.n_errors, store.injection_counts())

        assert run() == run()


class TestPermanentFaults:
    def test_permanent_key_fails_fast(self, points):
        """A dead object is not retried: the run aborts promptly with
        the injected error, even under a generous retry policy."""
        session = make_session(
            points, fault_spec=FaultSpec(permanent_keys=("part-",)),
            retry=FAST_RETRY,
        )
        with pytest.raises(PermanentStorageError, match="unreadable"):
            session.run(KMeansSpec(generate_points(3, 4, seed=81)))
        assert session.engine.stores["cloud"].n_permanent >= 1


class TestWorkerCrash:
    def test_crash_is_contained_and_job_reexecuted(self, points):
        """One worker dies after 2 jobs: its in-flight job is requeued
        and re-executed by a survivor; the result is unchanged."""
        clean = make_session(points).run(
            KMeansSpec(generate_points(3, 4, seed=81))
        )
        session = make_session(points, crash_plan={"cloud-w0": 2})
        rr = session.run(KMeansSpec(generate_points(3, 4, seed=81)))
        np.testing.assert_allclose(
            rr.result.centroids, clean.result.centroids
        )
        assert rr.stats.n_failed_workers == 1
        assert rr.stats.n_requeued_jobs >= 1
        assert rr.stats.jobs_recovered >= 1
        # Exactly once: completed jobs stay in the preserved robj, the
        # requeued ones are re-executed -- total equals the job count.
        n_jobs = len(jobs_from_index(session.index))
        assert rr.stats.jobs_processed == n_jobs

    def test_crash_with_prefetch_requeues_reserved_job(self, points):
        """A pipelined worker holds two outstanding jobs (current +
        reserved next); both must come back."""
        clean = make_session(points).run(
            KMeansSpec(generate_points(3, 4, seed=81))
        )
        session = make_session(
            points, crash_plan={"local-w0": 1}, prefetch=True
        )
        rr = session.run(KMeansSpec(generate_points(3, 4, seed=81)))
        np.testing.assert_allclose(
            rr.result.centroids, clean.result.centroids
        )
        assert rr.stats.n_failed_workers == 1
        n_jobs = len(jobs_from_index(session.index))
        assert rr.stats.jobs_processed == n_jobs

    def test_whole_cluster_dies_other_recovers(self, points):
        """Both cloud workers crash immediately: the local cluster
        steals everything, including the surrendered master pool."""
        clean = make_session(points).run(
            KMeansSpec(generate_points(3, 4, seed=81))
        )
        session = make_session(
            points, crash_plan={"cloud-w0": 0, "cloud-w1": 0}
        )
        rr = session.run(KMeansSpec(generate_points(3, 4, seed=81)))
        np.testing.assert_allclose(
            rr.result.centroids, clean.result.centroids
        )
        assert rr.stats.n_failed_workers == 2
        n_jobs = len(jobs_from_index(session.index))
        assert rr.stats.jobs_processed == n_jobs

    def test_retry_exhaustion_is_contained(self):
        """A worker whose fetch exhausts its retries dies like a crash:
        the run completes correctly on the survivors."""
        tokens = generate_tokens(30_000, 500, seed=3)
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        session = BurstingSession.from_units(
            tokens, tokens_format(), stores, local_fraction=0.5,
            retry=RetryPolicy(max_attempts=1), retrieval_threads=1,
        )
        # The first two cloud-store GETs fail; with max_attempts=1 each
        # failure kills its worker (no retry budget).
        faulty = FaultInjectingStore(
            stores["cloud"], FaultSpec(fail_nth=(1, 2))
        )
        session.stores["cloud"] = faulty
        session.engine.stores["cloud"] = faulty
        rr = session.run(WordCountSpec())
        assert rr.result == wordcount_exact(tokens)
        assert 1 <= rr.stats.n_failed_workers <= 2
        assert rr.stats.n_requeued_jobs >= 1
        assert rr.stats.n_errors >= 1


class TestMasterRequeue:
    """Satellite: an empty refill must not strand a job that is later
    requeued by a failed worker."""

    def make_master(self):
        idx = build_index(tokens_format(), [12] * 2, chunk_units=3)
        scheduler = HeadScheduler(jobs_from_index(idx))
        cluster = ClusterConfig("local", "local", 2)
        master = _Master(
            cluster, scheduler, threading.Lock(), batch_size=4, n_workers=2
        )
        return master, scheduler

    def test_waiting_get_job_picks_up_requeued_job(self):
        master, scheduler = self.make_master()
        held = []
        while (j := master.get_job(wait=False)) is not None:
            held.append(j)
        assert held and scheduler.remaining == 0
        victim = held.pop()
        got = []
        waiter = threading.Thread(target=lambda: got.append(master.get_job()))
        waiter.start()
        waiter.join(0.05)
        assert waiter.is_alive()  # polling: outstanding jobs remain
        with master.scheduler_lock:
            scheduler.reassign(victim)
        waiter.join(2.0)
        assert not waiter.is_alive()
        assert got and got[0].job_id == victim.job_id
        for j in held + got:
            with master.scheduler_lock:
                scheduler.complete(j)
        assert master.get_job() is None  # drained for real now
        assert scheduler.all_done

    def test_stop_event_aborts_waiter(self):
        master, scheduler = self.make_master()
        while master.get_job(wait=False) is not None:
            pass
        got = []
        waiter = threading.Thread(target=lambda: got.append(master.get_job()))
        waiter.start()
        master.stop.set()
        waiter.join(2.0)
        assert not waiter.is_alive()
        assert got == [None]

    def test_nonblocking_reserve_returns_none_immediately(self):
        master, scheduler = self.make_master()
        grabbed = []
        while (j := master.get_job(wait=False)) is not None:
            grabbed.append(j)
        assert grabbed and scheduler.outstanding == len(grabbed)
        # Outstanding jobs remain, but reserve must not block on them.
        assert master.reserve_next() is None

    def test_last_worker_death_surrenders_pool(self):
        master, scheduler = self.make_master()
        first = master.get_job()
        assert first is not None
        assert len(master.pool) > 0
        assert master.worker_died() == []  # one worker still alive
        drained = master.worker_died()     # last one: pool comes back
        assert drained and len(master.pool) == 0
