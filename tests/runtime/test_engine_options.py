"""Engine configuration options: results must be invariant to tuning."""

import numpy as np
import pytest

from repro.apps.knn import KnnSpec, knn_exact
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import points_format, tokens_format
from repro.runtime.engine import ClusterConfig, ThreadedEngine
from repro.runtime.scheduler import StaticScheduler


@pytest.fixture
def split(points, stores):
    idx = write_dataset(points, points_format(4), stores["local"], n_files=6, chunk_units=200)
    return distribute_dataset(idx, stores, {"local": 0.5, "cloud": 0.5}, stores["local"])


def clusters(local=2, cloud=2, threads=2):
    return [
        ClusterConfig("local", "local", local, retrieval_threads=threads),
        ClusterConfig("cloud", "cloud", cloud, retrieval_threads=threads),
    ]


class TestTuningInvariance:
    @pytest.mark.parametrize("batch_size", [1, 2, 8, 100])
    def test_batch_size_does_not_change_result(self, points, stores, split, batch_size):
        engine = ThreadedEngine(clusters(), stores, batch_size=batch_size)
        rr = engine.run(KnnSpec(np.zeros(4), 5), split)
        ref = knn_exact(points, np.zeros(4), 5)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])
        assert rr.stats.jobs_processed == len(split.chunks)

    @pytest.mark.parametrize("group_nbytes", [64, 4096, 1 << 22])
    def test_group_size_does_not_change_result(self, points, stores, split, group_nbytes):
        engine = ThreadedEngine(clusters(), stores, group_nbytes=group_nbytes)
        rr = engine.run(KnnSpec(np.zeros(4), 5), split)
        ref = knn_exact(points, np.zeros(4), 5)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])

    @pytest.mark.parametrize("threads", [1, 3, 8])
    def test_retrieval_threads_do_not_change_result(self, points, stores, split, threads):
        engine = ThreadedEngine(clusters(threads=threads), stores)
        rr = engine.run(KnnSpec(np.zeros(4), 5), split)
        ref = knn_exact(points, np.zeros(4), 5)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])

    def test_static_scheduler_correct_when_both_sites_have_compute(
        self, tokens, stores
    ):
        idx = write_dataset(tokens, tokens_format(), stores["local"], n_files=4, chunk_units=500)
        idx = distribute_dataset(idx, stores, {"local": 0.5, "cloud": 0.5}, stores["local"])
        engine = ThreadedEngine(clusters(), stores, scheduler_factory=StaticScheduler)
        rr = engine.run(WordCountSpec(), idx)
        assert rr.result == wordcount_exact(tokens)
        # Strict co-location: nobody ever steals.
        assert rr.stats.jobs_stolen == 0

    def test_lopsided_worker_counts(self, points, stores, split):
        # min_part_nbytes=0 keeps split fetches (and their GIL yields)
        # even for tiny chunks, so the cloud workers reliably start
        # before the single local worker can drain the whole pool.
        engine = ThreadedEngine(clusters(local=1, cloud=5), stores, min_part_nbytes=0)
        rr = engine.run(KnnSpec(np.zeros(4), 5), split)
        ref = knn_exact(points, np.zeros(4), 5)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])
        # The bigger cluster does more of the work.
        assert (
            rr.stats.clusters["cloud"].jobs_processed
            > rr.stats.clusters["local"].jobs_processed
        )


class TestComputeHints:
    def test_spec_cost_hints_order_matches_paper(self):
        """kmeans is compute-heavy, pagerank medium, knn light."""
        from repro.apps.kmeans import KMeansSpec
        from repro.apps.pagerank import PageRankSpec

        assert KMeansSpec.compute_s_per_unit > PageRankSpec.compute_s_per_unit
        assert PageRankSpec.compute_s_per_unit > KnnSpec.compute_s_per_unit
