"""Unit tests for cost accounting of simulated runs."""

import pytest

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import simulate_environment
from repro.cost.accounting import cost_of_run
from repro.cost.pricing import PricingModel
from repro.sim.calibration import APP_PROFILES


def run_and_cost(app, env, pricing=PricingModel()):
    res = simulate_environment(app, env)
    return res, cost_of_run(res, env, APP_PROFILES[app], pricing)


class TestCostOfRun:
    def test_all_local_costs_nothing_cloudside(self):
        env = EnvironmentConfig("env-local", 1.0, 32, 0)
        _, report = run_and_cost("knn", env)
        assert report.compute_usd == 0.0
        assert report.requests_usd == 0.0
        assert report.egress_usd == 0.0

    def test_all_cloud_pays_compute_and_requests_but_no_egress(self):
        env = EnvironmentConfig("env-cloud", 0.0, 0, 32)
        res, report = run_and_cost("knn", env)
        assert report.compute_usd > 0
        assert report.requests_usd > 0
        # Intra-AWS: no bytes leave, and no local head exists.
        assert report.egress_usd == 0.0

    def test_hybrid_pays_egress_for_stolen_jobs_and_robj(self):
        env = EnvironmentConfig("env-17/83", 1 / 6, 16, 16)
        res, report = run_and_cost("knn", env)
        stolen = res.stats.clusters["local"].jobs_stolen
        assert stolen > 0
        assert report.egress_usd > 0

    def test_more_skew_more_egress(self):
        e50 = EnvironmentConfig("a", 0.5, 16, 16)
        e17 = EnvironmentConfig("b", 1 / 6, 16, 16)
        _, r50 = run_and_cost("knn", e50)
        _, r17 = run_and_cost("knn", e17)
        assert r17.egress_usd > r50.egress_usd

    def test_pagerank_robj_egress_visible(self):
        """A 240 MB reduction object leaving AWS costs real money."""
        env = EnvironmentConfig("h", 0.5, 16, 16)
        _, pr = run_and_cost("pagerank", env)
        _, knn = run_and_cost("knn", env)
        # Same placement: pagerank's extra egress comes from the robj.
        assert pr.egress_usd > knn.egress_usd

    def test_total_is_sum(self):
        env = EnvironmentConfig("h", 0.5, 16, 16)
        _, report = run_and_cost("kmeans", env)
        assert report.total_usd == pytest.approx(
            report.compute_usd + report.requests_usd + report.egress_usd
        )

    def test_longer_runs_cost_more_compute(self):
        # Per-minute billing so sub-hour runs differentiate (whole-hour
        # billing would round both short runs up to the same hour).
        pricing = PricingModel(billing_quantum_h=1 / 60)
        env = EnvironmentConfig("c", 0.0, 0, 44)
        _, knn = run_and_cost("knn", env, pricing)
        _, km = run_and_cost("kmeans", env, pricing)
        # kmeans runs ~9x longer -> strictly more instance-time.
        assert km.compute_usd > knn.compute_usd

    def test_retrieval_threads_scale_requests(self):
        env = EnvironmentConfig("c", 0.0, 0, 32)
        res = simulate_environment("knn", env)
        profile = APP_PROFILES["knn"]
        r1 = cost_of_run(res, env, profile, retrieval_threads=1)
        r8 = cost_of_run(res, env, profile, retrieval_threads=8)
        assert r8.requests_usd == pytest.approx(8 * r1.requests_usd)

    def test_invalid_threads(self):
        env = EnvironmentConfig("c", 0.0, 0, 32)
        res = simulate_environment("knn", env)
        with pytest.raises(ValueError):
            cost_of_run(res, env, APP_PROFILES["knn"], retrieval_threads=0)

    def test_to_dict_rounding(self):
        env = EnvironmentConfig("h", 0.5, 16, 16)
        _, report = run_and_cost("knn", env)
        d = report.to_dict()
        assert set(d) == {"compute_usd", "requests_usd", "egress_usd", "total_usd"}
