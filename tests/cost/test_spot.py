"""Unit tests for spot-instance analysis."""

import pytest

from repro.bursting.config import EnvironmentConfig
from repro.cost.spot import SpotMarket, spot_analysis


@pytest.fixture(scope="module")
def env():
    return EnvironmentConfig("h", 0.5, 8, 8)


class TestSpotMarket:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpotMarket(discount=0.0)
        with pytest.raises(ValueError):
            SpotMarket(discount=1.5)
        with pytest.raises(ValueError):
            SpotMarket(revocation_rate_per_hour=-1)
        with pytest.raises(ValueError):
            SpotMarket(revocation_fraction=0.0)


class TestSpotAnalysis:
    def test_no_revocations_pure_discount(self, env):
        market = SpotMarket(discount=0.3, revocation_rate_per_hour=0.0)
        summary = spot_analysis("knn", env, market, n_trials=4, seed=1)
        assert summary.revocation_frequency == 0.0
        assert summary.mean_savings_pct == pytest.approx(70.0, abs=1.0)
        assert summary.mean_slowdown_pct == pytest.approx(0.0, abs=2.0)

    def test_aggressive_revocation_slows_but_still_saves(self, env):
        # Revocations land mid-run with near certainty (kmeans ~ 650 s).
        market = SpotMarket(discount=0.3, revocation_rate_per_hour=30.0,
                            revocation_fraction=0.5)
        summary = spot_analysis("kmeans", env, market, n_trials=6, seed=2)
        assert summary.revocation_frequency > 0.5
        assert summary.mean_time_s > summary.ondemand_time_s
        # Revoked cores stop billing, so the discount still wins.
        assert summary.mean_cost_usd < summary.ondemand_cost_usd

    def test_all_jobs_survive_revocations(self, env):
        market = SpotMarket(revocation_rate_per_hour=30.0)
        summary = spot_analysis("kmeans", env, market, n_trials=4, seed=3)
        # Completion is implicit: simulate_run raises when jobs strand.
        assert all(t.time_s > 0 for t in summary.trials)

    def test_p95_at_least_mean(self, env):
        market = SpotMarket(revocation_rate_per_hour=20.0)
        summary = spot_analysis("kmeans", env, market, n_trials=8, seed=4)
        assert summary.p95_time_s >= summary.mean_time_s - 1e-9

    def test_deterministic(self, env):
        market = SpotMarket(revocation_rate_per_hour=10.0)
        a = spot_analysis("knn", env, market, n_trials=5, seed=7)
        b = spot_analysis("knn", env, market, n_trials=5, seed=7)
        assert [t.time_s for t in a.trials] == [t.time_s for t in b.trials]

    def test_validation(self, env):
        with pytest.raises(ValueError):
            spot_analysis("knn", EnvironmentConfig("l", 1.0, 8, 0))
        with pytest.raises(ValueError):
            spot_analysis("knn", env, n_trials=0)
