"""Unit tests for time/cost provisioning."""

import pytest

from repro.cost.provisioning import (
    ProvisioningPoint,
    cheapest_meeting_deadline,
    fastest_within_budget,
    pareto_frontier,
    tradeoff_curve,
)


@pytest.fixture(scope="module")
def curve():
    return tradeoff_curve(
        "knn",
        local_cores=16,
        local_data_fraction=1 / 6,
        cloud_core_options=(0, 8, 16, 32),
    )


class TestTradeoffCurve:
    def test_one_point_per_option(self, curve):
        assert [p.cloud_cores for p in curve] == [0, 8, 16, 32]

    def test_more_cores_is_faster(self, curve):
        times = [p.time_s for p in curve]
        assert times == sorted(times, reverse=True)

    def test_more_cores_costs_more_compute(self, curve):
        compute = [p.cost.compute_usd for p in curve]
        assert compute == sorted(compute)
        assert compute[0] == 0.0

    def test_faster_runs_steal_less_egress(self, curve):
        """With more cloud cores, fewer jobs cross out of AWS."""
        egress = [p.cost.egress_usd for p in curve]
        assert egress == sorted(egress, reverse=True)

    def test_no_options_rejected(self):
        with pytest.raises(ValueError):
            tradeoff_curve("knn", local_cores=0, local_data_fraction=0.5,
                           cloud_core_options=(0,))


class TestParetoFrontier:
    def test_frontier_subset_sorted_by_time(self, curve):
        frontier = pareto_frontier(curve)
        assert set(id(p) for p in frontier) <= set(id(p) for p in curve)
        times = [p.time_s for p in frontier]
        assert times == sorted(times)

    def test_no_dominated_points(self, curve):
        frontier = pareto_frontier(curve)
        for a in frontier:
            for b in curve:
                dominates = (
                    b.time_s <= a.time_s and b.cost_usd < a.cost_usd
                ) or (b.time_s < a.time_s and b.cost_usd <= a.cost_usd)
                assert not dominates

    def test_dominated_point_removed(self):
        def pt(cores, t, cost):
            from repro.bursting.config import EnvironmentConfig
            from repro.cost.accounting import CostReport

            return ProvisioningPoint(
                cores, t, CostReport(cost, 0, 0), EnvironmentConfig("x", 0.5, 1, cores)
            )

        pts = [pt(0, 100, 1.0), pt(8, 50, 0.5), pt(16, 40, 2.0)]
        frontier = pareto_frontier(pts)
        # (0, 100, $1.0) is dominated by (8, 50, $0.5).
        assert [p.cloud_cores for p in frontier] == [16, 8]


class TestConstraints:
    def test_deadline_picks_cheapest_feasible(self, curve):
        loose = cheapest_meeting_deadline(curve, deadline_s=1e9)
        assert loose.cost_usd == min(p.cost_usd for p in curve)
        tight = cheapest_meeting_deadline(curve, deadline_s=curve[-1].time_s + 1)
        assert tight.time_s <= curve[-1].time_s + 1

    def test_impossible_deadline_returns_none(self, curve):
        assert cheapest_meeting_deadline(curve, deadline_s=0.001) is None

    def test_budget_picks_fastest_feasible(self, curve):
        rich = fastest_within_budget(curve, budget_usd=1e9)
        assert rich.time_s == min(p.time_s for p in curve)

    def test_impossible_budget_returns_none(self, curve):
        assert fastest_within_budget(curve, budget_usd=0.0001) is None

    def test_invalid_constraints(self, curve):
        with pytest.raises(ValueError):
            cheapest_meeting_deadline(curve, 0)
        with pytest.raises(ValueError):
            fastest_within_budget(curve, -1)

    def test_deadline_budget_tension(self, curve):
        """Tighter deadlines can only cost more (frontier monotonicity)."""
        frontier = pareto_frontier(curve)
        deadlines = sorted(p.time_s for p in frontier)
        costs = [
            cheapest_meeting_deadline(curve, d + 1e-6).cost_usd for d in deadlines
        ]
        assert costs == sorted(costs, reverse=True)
