"""Unit tests for instance-type selection."""

import pytest

from repro.cost.instances import (
    EC2_CATALOG_2011,
    InstanceType,
    cheapest_instances_for_deadline,
    instance_tradeoff,
)
from repro.cost.pricing import PricingModel


@pytest.fixture(scope="module")
def choices():
    return instance_tradeoff(
        "kmeans",
        local_cores=8,
        local_data_fraction=0.5,
        catalog=EC2_CATALOG_2011[:3],  # small / large / xlarge
        counts=(2, 8),
        pricing=PricingModel(billing_quantum_h=1 / 60),
    )


class TestInstanceType:
    def test_catalog_sane(self):
        names = [t.name for t in EC2_CATALOG_2011]
        assert "m1.large" in names
        for t in EC2_CATALOG_2011:
            assert t.throughput > 0
            assert t.usd_per_equiv_hour > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType("bad", 0, 1.0, 0.1)
        with pytest.raises(ValueError):
            InstanceType("bad", 1, 0.0, 0.1)

    def test_m1_large_matches_paper_calibration(self):
        m1l = next(t for t in EC2_CATALOG_2011 if t.name == "m1.large")
        assert m1l.cores == 2
        assert m1l.core_speed == pytest.approx(16 / 22)


class TestInstanceTradeoff:
    def test_candidate_grid(self, choices):
        assert len(choices) == 3 * 2
        assert {c.itype.name for c in choices} == {"m1.small", "m1.large", "m1.xlarge"}

    def test_more_instances_of_a_type_is_faster(self, choices):
        by_type = {}
        for c in choices:
            by_type.setdefault(c.itype.name, []).append(c)
        for cs in by_type.values():
            cs.sort(key=lambda c: c.count)
            assert cs[0].time_s > cs[-1].time_s

    def test_equal_cores_faster_family_wins(self):
        """8 m1.xlarge cores vs 8 c1.xlarge cores (faster ECUs): the
        faster family finishes the compute-bound app sooner."""
        out = instance_tradeoff(
            "kmeans", local_cores=8, local_data_fraction=0.5,
            catalog=(EC2_CATALOG_2011[2], EC2_CATALOG_2011[3]),  # m1.xl, c1.xl
            counts=(2,),
        )
        by_name = {c.itype.name: c for c in out}
        assert by_name["c1.xlarge"].time_s < by_name["m1.xlarge"].time_s

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            instance_tradeoff("knn", local_cores=4, local_data_fraction=0.5, catalog=())
        with pytest.raises(ValueError):
            instance_tradeoff("knn", local_cores=4, local_data_fraction=0.5, counts=())
        with pytest.raises(ValueError):
            instance_tradeoff("knn", local_cores=4, local_data_fraction=0.5, counts=(0,))


class TestDeadlineChoice:
    def test_picks_cheapest_feasible(self, choices):
        pick = cheapest_instances_for_deadline(choices, deadline_s=1e9)
        assert pick.compute_usd == min(c.compute_usd for c in choices)

    def test_tight_deadline_forces_spend(self, choices):
        loose = cheapest_instances_for_deadline(choices, 1e9)
        fastest = min(c.time_s for c in choices)
        tight = cheapest_instances_for_deadline(choices, fastest * 1.01)
        assert tight is not None
        assert tight.compute_usd >= loose.compute_usd

    def test_infeasible_returns_none(self, choices):
        assert cheapest_instances_for_deadline(choices, 0.001) is None

    def test_invalid_deadline(self, choices):
        with pytest.raises(ValueError):
            cheapest_instances_for_deadline(choices, 0)
