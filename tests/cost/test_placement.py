"""Unit tests for the data-placement advisor."""

import pytest

from repro.cost.placement import best_placement, placement_curve


@pytest.fixture(scope="module")
def curve():
    return placement_curve(
        "knn", local_cores=16, cloud_cores=16,
        fractions=(0.0, 1 / 6, 1 / 3, 0.5, 2 / 3, 1.0),
    )


class TestPlacementCurve:
    def test_one_point_per_fraction(self, curve):
        assert len(curve) == 6
        fracs = [p.local_fraction for p in curve]
        assert fracs == sorted(fracs)

    def test_balanced_placement_fast(self, curve):
        """With symmetric compute, ~50/50 beats the extremes (the
        paper's 'perfect distribution' observation)."""
        by_frac = {round(p.local_fraction, 3): p.time_s for p in curve}
        assert by_frac[0.5] < by_frac[0.0]
        assert by_frac[0.5] <= by_frac[1.0] * 1.05

    def test_egress_falls_with_local_fraction(self, curve):
        """More data at the cluster -> fewer bytes ever leave AWS."""
        egress = [p.cost.egress_usd for p in curve]
        assert egress[0] >= egress[-1]
        # All data local: only the tiny knn robj ever leaves AWS.
        assert egress[-1] == pytest.approx(0.0, abs=1e-6)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            placement_curve("knn", local_cores=4, cloud_cores=4, fractions=(1.5,))

    def test_empty_fractions_rejected(self):
        with pytest.raises(ValueError):
            placement_curve("knn", local_cores=4, cloud_cores=4, fractions=())


class TestBestPlacement:
    def test_time_objective(self, curve):
        best = best_placement(curve, objective="time")
        assert best.time_s == min(p.time_s for p in curve)

    def test_cost_objective(self, curve):
        best = best_placement(curve, objective="cost")
        assert best.cost.total_usd == min(p.cost.total_usd for p in curve)

    def test_objectives_can_disagree(self, curve):
        """Fast placements keep data local; cheap ones may differ --
        at minimum the advisor returns valid members of the curve."""
        t = best_placement(curve, objective="time")
        c = best_placement(curve, objective="cost")
        assert t in curve and c in curve

    def test_unknown_objective(self, curve):
        with pytest.raises(ValueError):
            best_placement(curve, objective="vibes")

    def test_empty_points(self):
        with pytest.raises(ValueError):
            best_placement([])
