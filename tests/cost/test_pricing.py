"""Unit tests for the pricing model."""

import pytest

from repro.cost.pricing import PricingModel


class TestInstanceMath:
    def test_instances_for_cores(self):
        p = PricingModel(cores_per_instance=2)
        assert p.instances_for(0) == 0
        assert p.instances_for(1) == 1
        assert p.instances_for(2) == 1
        assert p.instances_for(3) == 2
        assert p.instances_for(44) == 22

    def test_negative_cores(self):
        with pytest.raises(ValueError):
            PricingModel().instances_for(-1)


class TestComputeCost:
    def test_bills_whole_hours(self):
        p = PricingModel(instance_hour_usd=0.34, cores_per_instance=2)
        # 2 cores = 1 instance; 10 minutes bills a full hour.
        assert p.compute_cost(2, 600) == pytest.approx(0.34)
        # 90 minutes bills two hours.
        assert p.compute_cost(2, 5400) == pytest.approx(0.68)

    def test_scales_with_instances(self):
        p = PricingModel(instance_hour_usd=0.34, cores_per_instance=2)
        assert p.compute_cost(32, 600) == pytest.approx(16 * 0.34)

    def test_zero_cores_free(self):
        assert PricingModel().compute_cost(0, 3600) == 0.0

    def test_zero_duration_free(self):
        assert PricingModel().compute_cost(8, 0) == 0.0

    def test_negative_duration(self):
        with pytest.raises(ValueError):
            PricingModel().compute_cost(2, -1)

    def test_custom_quantum(self):
        p = PricingModel(instance_hour_usd=1.0, cores_per_instance=1,
                         billing_quantum_h=0.25)
        # 10 min bills one 15-min quantum.
        assert p.compute_cost(1, 600) == pytest.approx(0.25)


class TestRequestAndTransfer:
    def test_request_cost(self):
        p = PricingModel(s3_get_per_1k_usd=0.001)
        assert p.request_cost(10_000) == pytest.approx(0.01)
        assert p.request_cost(0) == 0.0

    def test_egress_cost_per_gb(self):
        p = PricingModel(egress_per_gb_usd=0.12)
        assert p.egress_cost(1 << 30) == pytest.approx(0.12)
        assert p.egress_cost(0) == 0.0

    def test_storage_cost_prorated(self):
        p = PricingModel(s3_storage_gb_month_usd=0.14)
        assert p.storage_cost(1 << 30, 30) == pytest.approx(0.14)
        assert p.storage_cost(1 << 30, 15) == pytest.approx(0.07)

    def test_negative_inputs_rejected(self):
        p = PricingModel()
        with pytest.raises(ValueError):
            p.request_cost(-1)
        with pytest.raises(ValueError):
            p.egress_cost(-1)
        with pytest.raises(ValueError):
            p.storage_cost(-1, 1)


class TestValidation:
    def test_invalid_model(self):
        with pytest.raises(ValueError):
            PricingModel(cores_per_instance=0)
        with pytest.raises(ValueError):
            PricingModel(instance_hour_usd=-1)
        with pytest.raises(ValueError):
            PricingModel(billing_quantum_h=0)
