"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--app", "nosuch"])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["sweep", "--app", "knn"],
            ["scalability", "--app", "kmeans"],
            ["simulate", "--app", "pagerank"],
            ["provision", "--app", "knn", "--deadline", "60"],
            ["evaluate"],
            ["demo"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestCommands:
    def test_sweep_prints_tables(self, capsys):
        assert main(["sweep", "--app", "knn"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Table I" in out
        assert "Table II" in out
        assert "env-17/83" in out

    def test_scalability_prints_efficiencies(self, capsys):
        assert main(["scalability", "--app", "knn"]) == 0
        out = capsys.readouterr().out
        assert "(32,32)" in out
        assert "efficiency_pct" in out

    def test_simulate_custom_config(self, capsys):
        rc = main([
            "simulate", "--app", "knn",
            "--local-cores", "4", "--cloud-cores", "4",
            "--local-fraction", "0.25",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 local + 4 cloud cores" in out
        assert "total:" in out

    def test_simulate_invalid_fraction(self, capsys):
        assert main(["simulate", "--app", "knn", "--local-fraction", "1.5"]) == 2

    def test_simulate_no_cores(self, capsys):
        rc = main([
            "simulate", "--app", "knn",
            "--local-cores", "0", "--cloud-cores", "0",
        ])
        assert rc == 2

    def test_provision_with_deadline(self, capsys):
        rc = main([
            "provision", "--app", "knn", "--local-cores", "16",
            "--deadline", "1000000", "--options", "0", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "deadline" in out

    def test_provision_infeasible_deadline(self, capsys):
        rc = main([
            "provision", "--app", "knn", "--deadline", "0.001",
            "--options", "0", "8",
        ])
        assert rc == 1
        assert "infeasible" in capsys.readouterr().out

    def test_provision_with_budget(self, capsys):
        rc = main([
            "provision", "--app", "knn", "--budget", "1000",
            "--options", "0", "8",
        ])
        assert rc == 0
        assert "budget" in capsys.readouterr().out

    def test_demo_runs_real_middleware(self, capsys):
        rc = main(["demo", "--tokens", "5000", "--vocab", "100"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_demo_with_codec_and_adaptive(self, capsys):
        rc = main([
            "demo", "--tokens", "5000", "--vocab", "100",
            "--codec", "shuffle", "--adaptive-fetch", "--min-part-kb", "16",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "transfer layer" in out

    def test_demo_filter_with_pushdown(self, capsys):
        rc = main([
            "demo", "--tokens", "5000", "--vocab", "200",
            "--filter", "50:99", "--pushdown",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wordcount[50:99]" in out
        assert "OK" in out
        assert "metadata-first retrieval" in out
        assert "prune" in out

    def test_demo_filter_verify_mode(self, capsys):
        rc = main([
            "demo", "--tokens", "5000", "--vocab", "200",
            "--filter", "50:99", "--pushdown", "verify",
        ])
        assert rc == 0
        assert "verify" in capsys.readouterr().out

    def test_demo_rejects_bad_filter(self, capsys):
        assert main(["demo", "--filter", "99:50"]) == 2
        assert main(["demo", "--filter", "abc"]) == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--pushdown", "always"])

    def test_demo_rejects_bad_codec_and_negative_min_part(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--codec", "gzip"])
        assert main(["demo", "--min-part-kb", "-1"]) == 2

    def test_simulate_with_codec_prints_transfer_table(self, capsys):
        rc = main([
            "simulate", "--app", "knn",
            "--local-cores", "4", "--cloud-cores", "4",
            "--codec", "shuffle", "--adaptive-fetch",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "transfer layer" in out
        assert "compress_ratio" in out

    def test_transfer_flags_parse(self):
        parser = build_parser()
        ns = parser.parse_args([
            "demo", "--codec", "zlib", "--no-adaptive-fetch",
        ])
        assert ns.codec == "zlib" and ns.adaptive_fetch is False
        ns = parser.parse_args(["simulate", "--app", "knn",
                                "--codec", "lz4", "--adaptive-fetch"])
        assert ns.codec == "lz4" and ns.adaptive_fetch is True

    def test_place_advisor(self, capsys):
        rc = main(["place", "--app", "knn", "--local-cores", "8",
                   "--cloud-cores", "8", "--objective", "time"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "placement sweep" in out
        assert "best (time)" in out

    def test_trace_gantt(self, capsys):
        rc = main(["trace", "--app", "knn", "--local-cores", "4",
                   "--cloud-cores", "4", "--width", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# compute" in out
        assert "|" in out
