"""Tests for stragglers and speculative (backup) execution."""

import pytest

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.sim.calibration import APP_PROFILES, PAPER_N_JOBS, ResourceParams
from repro.sim.simrun import StragglerSpec, simulate_run


def run(app="kmeans", stragglers=None, speculation=False, seed=0,
        local=8, cloud=8, local_frac=0.5):
    env = EnvironmentConfig("h", local_frac, local, cloud)
    profile = APP_PROFILES[app]
    params = ResourceParams()
    return simulate_run(
        paper_index(profile, env), env.clusters(params), profile, params,
        seed=seed, stragglers=stragglers, speculation=speculation,
    )


class TestStragglerSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerSpec("local", 0, 0.5)
        with pytest.raises(ValueError):
            StragglerSpec("local", 1, 0.0)
        with pytest.raises(ValueError):
            StragglerSpec("local", 1, 1.0)

    def test_unknown_cluster_rejected(self):
        with pytest.raises(ValueError):
            run(stragglers=[StragglerSpec("mars", 1, 0.5)])

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            run(stragglers=[StragglerSpec("local", 99, 0.5)])


class TestStragglerImpact:
    def test_stragglers_extend_the_run(self):
        base = run()
        slow = run(stragglers=[StragglerSpec("local", 2, 0.2)])
        assert slow.total_s > base.total_s

    def test_pull_scheduling_absorbs_most_of_it(self):
        """On-demand pulls feed the slow cores fewer jobs: the total
        slowdown stays far below the 5x slowdown of the affected cores."""
        base = run()
        slow = run(stragglers=[StragglerSpec("local", 2, 0.2)])
        assert slow.total_s < 2.0 * base.total_s
        slow_workers = slow.stats.clusters["local"].workers[-2:]
        fast_workers = slow.stats.clusters["local"].workers[:-2]
        assert max(w.jobs_processed for w in slow_workers) < min(
            w.jobs_processed for w in fast_workers
        )

    def test_all_jobs_still_processed(self):
        slow = run(stragglers=[StragglerSpec("local", 2, 0.2)])
        assert slow.stats.jobs_processed == PAPER_N_JOBS


class TestSpeculation:
    def test_speculation_cuts_straggler_tail(self):
        # A 20x straggler turns one 8 s job into 168 s; idle workers
        # back it up and win long before the straggler would finish.
        stragglers = [StragglerSpec("local", 2, 0.05)]
        plain = run(stragglers=stragglers, speculation=False)
        spec = run(stragglers=stragglers, speculation=True)
        assert spec.total_s < plain.total_s - 30.0

    def test_exactly_once_despite_backups(self):
        spec = run(stragglers=[StragglerSpec("local", 2, 0.1)], speculation=True)
        assert spec.stats.jobs_processed == PAPER_N_JOBS

    def test_wasted_executions_counted(self):
        spec = run(stragglers=[StragglerSpec("local", 2, 0.1)], speculation=True)
        # Some copy (original or backup) lost the race at least once.
        assert spec.wasted_executions >= 1
        # And at most one backup per job was ever launched.
        assert spec.wasted_executions <= PAPER_N_JOBS

    def test_no_stragglers_speculation_near_noop(self):
        base = run(speculation=False)
        spec = run(speculation=True)
        # Homogeneous cores: backups barely change the outcome.
        assert abs(spec.total_s - base.total_s) / base.total_s < 0.1
        assert spec.stats.jobs_processed == PAPER_N_JOBS

    def test_deterministic(self):
        kw = dict(stragglers=[StragglerSpec("local", 2, 0.1)], speculation=True, seed=4)
        assert run(**kw).total_s == run(**kw).total_s
