"""Unit tests for execution tracing and Gantt rendering."""

import pytest

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.sim.calibration import APP_PROFILES, PAPER_N_JOBS, ResourceParams
from repro.sim.simrun import simulate_run
from repro.sim.trace import Span, Tracer, render_gantt


def traced_run(app="knn", local=4, cloud=4, frac=0.5, seed=0):
    env = EnvironmentConfig("t", frac, local, cloud)
    profile = APP_PROFILES[app]
    params = ResourceParams()
    tracer = Tracer()
    res = simulate_run(
        paper_index(profile, env), env.clusters(params), profile, params,
        seed=seed, tracer=tracer,
    )
    return res, tracer


class TestTracer:
    def test_records_fetch_and_compute_per_job(self):
        res, tracer = traced_run()
        fetches = [s for s in tracer.spans if s.kind == "fetch"]
        computes = [s for s in tracer.spans if s.kind == "compute"]
        assert len(fetches) == PAPER_N_JOBS
        assert len(computes) == PAPER_N_JOBS

    def test_spans_well_formed(self):
        res, tracer = traced_run()
        for s in tracer.spans:
            assert s.t1 >= s.t0 >= 0
            assert s.duration >= 0
            assert s.data_location in ("local", "cloud")

    def test_worker_names_cover_all_cores(self):
        res, tracer = traced_run(local=3, cloud=2)
        names = set(tracer.workers())
        assert names == {f"local/{i}" for i in range(3)} | {f"cloud/{i}" for i in range(2)}

    def test_stolen_flags_match_stats(self):
        res, tracer = traced_run(frac=1 / 6)
        traced_stolen = sum(
            1 for s in tracer.spans if s.kind == "compute" and s.stolen
        )
        assert traced_stolen == res.stats.jobs_stolen

    def test_span_times_within_run(self):
        res, tracer = traced_run()
        assert tracer.end_time <= res.total_s + 1e-9

    def test_timer_agreement(self):
        """Traced durations reproduce the stats timers exactly."""
        res, tracer = traced_run()
        for cname, c in res.stats.clusters.items():
            traced_fetch = sum(
                s.duration for s in tracer.spans
                if s.kind == "fetch" and s.worker.startswith(cname + "/")
            )
            assert traced_fetch == pytest.approx(
                sum(w.retrieval_s for w in c.workers)
            )

    def test_utilization_bounds(self):
        res, tracer = traced_run()
        u = tracer.utilization()
        assert 0.0 < u <= 1.0

    def test_validation(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.record("w", "fetch", 2.0, 1.0, 0, "local", False)
        with pytest.raises(ValueError):
            t.record("w", "nap", 0.0, 1.0, 0, "local", False)


class TestRenderGantt:
    def test_renders_one_row_per_worker(self):
        res, tracer = traced_run(local=2, cloud=2)
        text = render_gantt(tracer, width=60)
        lines = text.splitlines()
        assert sum(1 for l in lines if "|" in l) == 4
        assert "# compute" in lines[-1]

    def test_rows_have_requested_width(self):
        res, tracer = traced_run(local=2, cloud=2)
        for line in render_gantt(tracer, width=40).splitlines():
            if "|" in line:
                inner = line.split("|")[1]
                assert len(inner) == 40

    def test_contains_activity_glyphs(self):
        res, tracer = traced_run()
        text = render_gantt(tracer, width=60)
        assert "#" in text and "=" in text

    def test_stolen_glyph_when_stealing(self):
        res, tracer = traced_run(frac=0.0)  # local cluster steals everything
        text = render_gantt(tracer, width=60)
        assert "%" in text

    def test_empty_trace(self):
        assert render_gantt(Tracer()) == "(empty trace)"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            render_gantt(Tracer(), width=0)

    def test_worker_subset(self):
        res, tracer = traced_run(local=2, cloud=2)
        text = render_gantt(tracer, width=30, workers=["local/0"])
        assert sum(1 for l in text.splitlines() if "|" in l) == 1
