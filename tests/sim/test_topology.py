"""Unit tests for topology routing."""

import math

import pytest

from repro.sim.calibration import ResourceParams
from repro.sim.topology import Topology


@pytest.fixture
def topo():
    return Topology(ResourceParams(), head_location="local")


class TestFetchPaths:
    def test_local_to_local_hits_disk_only(self, topo):
        p = topo.fetch_path("local", "local", retrieval_threads=8)
        assert [l.name for l in p.links] == ["local-disk"]
        assert p.latency_s == 0.0
        assert p.per_flow_cap == ResourceParams().local_per_worker_bw

    def test_cloud_to_s3_internal(self, topo):
        p = topo.fetch_path("cloud", "cloud", retrieval_threads=8)
        assert [l.name for l in p.links] == ["s3-service"]
        assert p.per_flow_cap == 8 * ResourceParams().s3_per_connection_bw

    def test_local_stealing_crosses_wan(self, topo):
        p = topo.fetch_path("local", "cloud", retrieval_threads=4)
        assert {l.name for l in p.links} == {"s3-service", "wan"}
        assert p.latency_s > 0
        assert p.per_flow_cap == 4 * ResourceParams().wan_per_connection_bw

    def test_cloud_stealing_crosses_wan_and_disk(self, topo):
        p = topo.fetch_path("cloud", "local", retrieval_threads=4)
        assert {l.name for l in p.links} == {"local-disk", "wan"}

    def test_retrieval_threads_scale_cap(self, topo):
        p1 = topo.fetch_path("cloud", "cloud", retrieval_threads=1)
        p8 = topo.fetch_path("cloud", "cloud", retrieval_threads=8)
        assert p8.per_flow_cap == pytest.approx(8 * p1.per_flow_cap)

    def test_invalid_threads(self, topo):
        with pytest.raises(ValueError):
            topo.fetch_path("local", "local", retrieval_threads=0)

    def test_unknown_site(self, topo):
        with pytest.raises(ValueError):
            topo.fetch_path("mars", "local", retrieval_threads=1)


class TestRobjPaths:
    def test_head_colocated_cluster_free(self, topo):
        p = topo.robj_path("local")
        assert p.links == ()
        assert p.latency_s == 0.0

    def test_remote_cluster_crosses_wan(self, topo):
        p = topo.robj_path("cloud")
        assert [l.name for l in p.links] == ["wan"]
        assert p.latency_s > 0

    def test_head_in_cloud(self):
        topo = Topology(ResourceParams(), head_location="cloud")
        assert topo.robj_path("cloud").links == ()
        assert [l.name for l in topo.robj_path("local").links] == ["wan"]

    def test_invalid_head_location(self):
        with pytest.raises(ValueError):
            Topology(ResourceParams(), head_location="mars")


class TestControlPlane:
    def test_refill_rtt_local_vs_remote(self, topo):
        assert topo.refill_rtt("local") < topo.refill_rtt("cloud")
