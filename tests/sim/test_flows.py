"""Unit tests for the fluid flow network (max-min fair sharing)."""

import math

import pytest

from repro.sim.events import SimEnv
from repro.sim.flows import FlowNetwork, Link


def run_transfers(specs):
    """specs: list of (name, links, nbytes, max_rate, start_time)."""
    env = SimEnv()
    net = FlowNetwork(env)
    done_times = {}

    def proc(name, links, nbytes, max_rate, start):
        if start:
            yield start
        yield net.transfer(links, nbytes, max_rate)
        done_times[name] = env.now

    for spec in specs:
        env.process(proc(*spec))
    env.run()
    return done_times


class TestSingleFlow:
    def test_link_limited(self):
        link = Link("l", 100.0)
        t = run_transfers([("f", [link], 250, math.inf, 0.0)])
        assert t["f"] == pytest.approx(2.5)

    def test_max_rate_limited(self):
        link = Link("l", 1000.0)
        t = run_transfers([("f", [link], 100, 10.0, 0.0)])
        assert t["f"] == pytest.approx(10.0)

    def test_multi_link_min_capacity(self):
        a, b = Link("a", 100.0), Link("b", 25.0)
        t = run_transfers([("f", [a, b], 100, math.inf, 0.0)])
        assert t["f"] == pytest.approx(4.0)

    def test_zero_bytes_completes_immediately(self):
        env = SimEnv()
        net = FlowNetwork(env)
        ev = net.transfer([Link("l", 10.0)], 0)
        assert ev.triggered

    def test_unbounded_flow_rejected(self):
        env = SimEnv()
        net = FlowNetwork(env)
        with pytest.raises(ValueError):
            net.transfer([], 100, math.inf)

    def test_negative_bytes_rejected(self):
        env = SimEnv()
        with pytest.raises(ValueError):
            FlowNetwork(env).transfer([Link("l", 1.0)], -1)

    def test_linkless_flow_with_cap(self):
        env = SimEnv()
        net = FlowNetwork(env)
        times = {}

        def proc():
            yield net.transfer([], 100, 10.0)
            times["f"] = env.now

        env.process(proc())
        env.run()
        assert times["f"] == pytest.approx(10.0)


class TestFairSharing:
    def test_equal_share(self):
        link = Link("l", 100.0)
        t = run_transfers([
            ("a", [link], 100, math.inf, 0.0),
            ("b", [link], 100, math.inf, 0.0),
        ])
        assert t["a"] == pytest.approx(2.0)
        assert t["b"] == pytest.approx(2.0)

    def test_rate_recomputed_on_join_and_leave(self):
        link = Link("l", 100.0)
        t = run_transfers([
            ("a", [link], 100, math.inf, 0.0),
            ("b", [link], 100, math.inf, 0.5),
        ])
        # a: 50 B alone, then 50 B at 50 B/s -> 1.5; b: 50 B shared + 50 B alone -> 2.0
        assert t["a"] == pytest.approx(1.5)
        assert t["b"] == pytest.approx(2.0)

    def test_capped_flow_leaves_capacity_for_others(self):
        link = Link("l", 100.0)
        t = run_transfers([
            ("capped", [link], 100, 10.0, 0.0),
            ("open", [link], 90, math.inf, 0.0),
        ])
        assert t["capped"] == pytest.approx(10.0)
        assert t["open"] == pytest.approx(1.0)

    def test_max_min_across_two_links(self):
        # Flow X crosses both links; Y only the narrow one.  Max-min:
        # both get 15 on the narrow link; X is not limited by the wide one.
        wide, narrow = Link("wide", 100.0), Link("narrow", 30.0)
        t = run_transfers([
            ("x", [wide, narrow], 30, math.inf, 0.0),
            ("y", [narrow], 30, math.inf, 0.0),
        ])
        assert t["x"] == pytest.approx(2.0)
        assert t["y"] == pytest.approx(2.0)

    def test_bottleneck_freed_capacity_redistributed(self):
        # Flow A on link1 only; B crosses link1+link2 but link2 caps it
        # at 10, so A should get the remaining 90 (true max-min).
        l1, l2 = Link("l1", 100.0), Link("l2", 10.0)
        t = run_transfers([
            ("a", [l1], 90, math.inf, 0.0),
            ("b", [l1, l2], 10, math.inf, 0.0),
        ])
        assert t["a"] == pytest.approx(1.0)
        assert t["b"] == pytest.approx(1.0)

    def test_three_way_share(self):
        link = Link("l", 90.0)
        t = run_transfers([(f"f{i}", [link], 30, math.inf, 0.0) for i in range(3)])
        for i in range(3):
            assert t[f"f{i}"] == pytest.approx(1.0)


class TestConservation:
    def test_aggregate_throughput_never_exceeds_capacity(self):
        """Total bytes moved over a saturated link == capacity * time."""
        link = Link("l", 50.0)
        t = run_transfers([
            ("a", [link], 100, math.inf, 0.0),
            ("b", [link], 100, math.inf, 0.0),
            ("c", [link], 100, math.inf, 0.0),
        ])
        finish = max(t.values())
        assert finish == pytest.approx(300 / 50.0)

    def test_numeric_robustness_tiny_remainder(self):
        """Very large transfers complete despite float cancellation."""
        link = Link("l", 60 * (1 << 20))
        t = run_transfers([
            ("big", [link], 240 * (1 << 20), math.inf, 0.0),
            ("other", [link], 10 * (1 << 20), math.inf, 0.3),
        ])
        assert t["big"] < 10.0  # terminates (regression: robj-flow stall)
