"""Unit tests for the EC2 variability model."""

import numpy as np
import pytest

from repro.sim.variability import VariabilityModel, VariabilityParams


class TestCoreSpeedFactor:
    def test_zero_sigma_is_exactly_one(self):
        model = VariabilityModel(VariabilityParams(sigma=0.0), seed=1)
        assert all(model.core_speed_factor() == 1.0 for _ in range(10))

    def test_deterministic_per_seed(self):
        a = VariabilityModel(VariabilityParams(sigma=0.1), seed=5)
        b = VariabilityModel(VariabilityParams(sigma=0.1), seed=5)
        assert [a.core_speed_factor() for _ in range(5)] == [
            b.core_speed_factor() for _ in range(5)
        ]

    def test_mean_near_one(self):
        model = VariabilityModel(VariabilityParams(sigma=0.1), seed=2)
        factors = [model.core_speed_factor() for _ in range(4000)]
        assert np.mean(factors) == pytest.approx(1.0, rel=0.02)

    def test_larger_sigma_more_spread(self):
        lo = VariabilityModel(VariabilityParams(sigma=0.02), seed=3)
        hi = VariabilityModel(VariabilityParams(sigma=0.2), seed=3)
        s_lo = np.std([lo.core_speed_factor() for _ in range(2000)])
        s_hi = np.std([hi.core_speed_factor() for _ in range(2000)])
        assert s_hi > 3 * s_lo

    def test_factors_positive(self):
        model = VariabilityModel(VariabilityParams(sigma=0.3), seed=4)
        assert all(model.core_speed_factor() > 0 for _ in range(100))


class TestEpisodes:
    def test_no_episodes_means_full_speed(self):
        model = VariabilityModel(VariabilityParams(episode_rate=0.0), seed=1)
        assert model.effective_speed(100.0) == 1.0

    def test_episodes_slow_execution(self):
        model = VariabilityModel(
            VariabilityParams(episode_rate=0.02, episode_duration_s=30, episode_slowdown=0.5),
            seed=1,
        )
        speeds = [model.effective_speed(100.0) for _ in range(200)]
        assert all(0.5 <= s <= 1.0 for s in speeds)
        assert np.mean(speeds) < 0.95

    def test_zero_duration_interval(self):
        model = VariabilityModel(VariabilityParams(episode_rate=0.5), seed=1)
        assert model.effective_speed(0.0) == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            VariabilityModel(VariabilityParams(sigma=-1))
        with pytest.raises(ValueError):
            VariabilityModel(VariabilityParams(episode_slowdown=0.0))
        with pytest.raises(ValueError):
            VariabilityModel(VariabilityParams(episode_slowdown=1.5))
