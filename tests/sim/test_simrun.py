"""Unit/integration tests for the simulated bursting runs."""

import pytest

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index, simulate_environment
from repro.runtime.scheduler import RandomScheduler
from repro.sim.calibration import APP_PROFILES, PAPER_N_JOBS, ResourceParams
from repro.sim.simrun import SimClusterConfig, simulate_run


@pytest.fixture
def knn_profile():
    return APP_PROFILES["knn"]


def small_env(local_frac=0.5, local=4, cloud=4):
    return EnvironmentConfig("test", local_frac, local, cloud)


class TestSimulateRun:
    def test_all_jobs_processed(self, knn_profile):
        res = simulate_environment("knn", small_env())
        assert res.stats.jobs_processed == PAPER_N_JOBS

    def test_deterministic_for_seed(self):
        a = simulate_environment("knn", small_env(), seed=3)
        b = simulate_environment("knn", small_env(), seed=3)
        assert a.total_s == b.total_s

    def test_seed_changes_variability(self):
        a = simulate_environment("knn", small_env(), seed=1)
        b = simulate_environment("knn", small_env(), seed=2)
        assert a.total_s != b.total_s

    def test_sync_consistency(self):
        """Per-worker sync = end - finish; totals are internally consistent."""
        res = simulate_environment("kmeans", small_env())
        for c in res.stats.clusters.values():
            for w in c.workers:
                assert w.sync_s == pytest.approx(res.total_s - w.finished_at)
                assert w.processing_s > 0
                assert w.retrieval_s > 0

    def test_global_reduction_positive(self):
        res = simulate_environment("pagerank", small_env())
        assert res.stats.global_reduction_s > 0
        assert res.stats.processing_end_s < res.total_s

    def test_single_cluster_no_idle(self):
        res = simulate_environment("knn", EnvironmentConfig("solo", 1.0, 8, 0))
        (c,) = res.stats.clusters.values()
        assert c.idle_s == 0.0

    def test_cloud_only_head_in_cloud(self):
        """All-cloud runs pay no WAN for the reduction object."""
        res = simulate_environment("pagerank", EnvironmentConfig("c", 0.0, 0, 8))
        (c,) = res.stats.clusters.values()
        # robj transfer is intra-site: only combination cost remains in
        # global reduction, and the upload itself is free.
        assert c.robj_transfer_s == pytest.approx(0.0, abs=1e-9)

    def test_hybrid_head_local_charges_cloud_upload(self):
        res = simulate_environment("pagerank", small_env())
        assert res.stats.clusters["cloud"].robj_transfer_s > 0
        assert res.stats.clusters["local"].robj_transfer_s == pytest.approx(0.0, abs=1e-9)

    def test_custom_scheduler(self):
        res = simulate_environment(
            "knn", small_env(), scheduler_factory=lambda jobs: RandomScheduler(jobs, seed=0)
        )
        assert res.stats.jobs_processed == PAPER_N_JOBS

    def test_requires_clusters(self, knn_profile):
        idx = paper_index(knn_profile, small_env())
        with pytest.raises(ValueError):
            simulate_run(idx, [], knn_profile)


class TestStealingBehaviour:
    def test_skew_increases_stealing(self):
        balanced = simulate_environment("knn", small_env(0.5))
        skewed = simulate_environment("knn", small_env(1 / 6))
        assert (
            skewed.stats.clusters["local"].jobs_stolen
            > balanced.stats.clusters["local"].jobs_stolen
        )

    def test_stolen_jobs_marked(self):
        res = simulate_environment("knn", EnvironmentConfig("x", 0.0, 4, 4))
        local = res.stats.clusters["local"]
        assert local.jobs_stolen == local.jobs_processed  # all data remote

    def test_retrieval_grows_with_remote_share(self):
        r50 = simulate_environment("knn", small_env(0.5, 16, 16))
        r17 = simulate_environment("knn", small_env(1 / 6, 16, 16))
        assert (
            r17.stats.clusters["local"].retrieval_s
            > r50.stats.clusters["local"].retrieval_s
        )


class TestResourceSensitivity:
    def test_slower_wan_hurts_skewed_runs(self):
        slow = ResourceParams().scaled(wan_bw=10 * (1 << 20))
        fast = ResourceParams().scaled(wan_bw=400 * (1 << 20))
        t_slow = simulate_environment("knn", small_env(1 / 6), slow).total_s
        t_fast = simulate_environment("knn", small_env(1 / 6), fast).total_s
        assert t_slow > t_fast

    def test_more_cores_faster(self):
        small = simulate_environment("kmeans", small_env(0.5, 4, 4))
        big = simulate_environment("kmeans", small_env(0.5, 16, 16))
        assert big.total_s < small.total_s

    def test_bigger_robj_more_global_reduction(self):
        prof = APP_PROFILES["pagerank"]
        env = small_env()
        idx = paper_index(prof, env)
        params = ResourceParams()
        clusters = env.clusters(params)
        small_prof = type(prof)(
            name="pr-small", unit_nbytes=prof.unit_nbytes,
            compute_s_per_unit=prof.compute_s_per_unit, robj_nbytes=1024,
        )
        big = simulate_run(idx, clusters, prof, params, seed=0)
        small = simulate_run(idx, clusters, small_prof, params, seed=0)
        assert big.stats.global_reduction_s > small.stats.global_reduction_s
