"""DES model of erasure-coded fastest-k-of-n retrieval.

The simulator must agree with the live engines on the shape of the
win: k-of-n completion masks a stalled leg (order statistics), parity
decodes happen exactly when a data leg stalls, and a clean run pays no
waste at all.
"""

import pytest

from repro.bursting.config import paper_environments
from repro.bursting.driver import paper_index
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import simulate_run
from repro.storage.faults import FaultSpec

PROFILE = APP_PROFILES["kmeans"]
PARAMS = ResourceParams()


def setup():
    env_cfg = paper_environments(PROFILE)[0]
    index = paper_index(PROFILE, env_cfg)
    return index, env_cfg.clusters(PARAMS)


STALLS = {
    loc: FaultSpec(stall_p=0.3, stall_s=5.0, seed=7)
    for loc in ("local", "cloud")
}


class TestStripedSim:
    def test_clean_run_counts_fragments_only(self):
        index, clusters = setup()
        res = simulate_run(index, clusters, PROFILE, PARAMS, seed=1,
                           stripe=(4, 2))
        assert res.stats.n_fragments == 4 * res.stats.jobs_processed
        assert res.stats.n_parity_decodes == 0
        assert res.stats.fragments_wasted_bytes == 0

    def test_stalls_trigger_parity_and_waste(self):
        index, clusters = setup()
        res = simulate_run(index, clusters, PROFILE, PARAMS, seed=1,
                           stripe=(4, 2), store_stalls=STALLS)
        assert res.stats.n_parity_decodes > 0
        assert res.stats.fragments_wasted_bytes > 0

    def test_striping_masks_stalls(self):
        index, clusters = setup()
        base = simulate_run(index, clusters, PROFILE, PARAMS, seed=1,
                            store_stalls=STALLS)
        striped = simulate_run(index, clusters, PROFILE, PARAMS, seed=1,
                               stripe=(4, 2), store_stalls=STALLS)
        assert striped.total_s < base.total_s

    def test_prefetch_composes_with_striping(self):
        index, clusters = setup()
        res = simulate_run(index, clusters, PROFILE, PARAMS, seed=1,
                           stripe=(4, 2), store_stalls=STALLS, prefetch=True)
        assert res.stats.n_parity_decodes > 0
        assert res.stats.jobs_processed > 0

    def test_deterministic(self):
        index, clusters = setup()
        runs = [
            simulate_run(index, clusters, PROFILE, PARAMS, seed=1,
                         stripe=(4, 2), store_stalls=STALLS).total_s
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("bad", [(0, 1), (1, 0), (4,), (-2, 3)])
    def test_invalid_stripe_rejected(self, bad):
        index, clusters = setup()
        with pytest.raises(ValueError):
            simulate_run(index, clusters, PROFILE, PARAMS, stripe=bad)
