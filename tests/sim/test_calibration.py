"""Unit tests for cost-model calibration constants."""

import pytest

from repro.sim.calibration import (
    APP_PROFILES,
    PAPER_DATASET_NBYTES,
    PAPER_N_FILES,
    PAPER_N_JOBS,
    ResourceParams,
)


class TestPaperLayout:
    def test_dataset_is_12gb(self):
        assert PAPER_DATASET_NBYTES == 12 * (1 << 30)

    def test_files_and_jobs(self):
        assert PAPER_N_FILES == 32
        assert PAPER_N_JOBS % PAPER_N_FILES == 0

    def test_chunk_size_about_12mb(self):
        chunk = PAPER_DATASET_NBYTES / PAPER_N_JOBS
        assert 10 * (1 << 20) < chunk < 16 * (1 << 20)


class TestAppProfiles:
    def test_three_paper_apps(self):
        assert set(APP_PROFILES) == {"knn", "kmeans", "pagerank"}

    def test_compute_intensity_ordering(self):
        """kmeans is compute-heavy, knn light (paper characterization)."""
        assert (
            APP_PROFILES["kmeans"].compute_s_per_unit
            > APP_PROFILES["pagerank"].compute_s_per_unit * 4
        )
        assert (
            APP_PROFILES["pagerank"].compute_s_per_unit
            > APP_PROFILES["knn"].compute_s_per_unit
        )

    def test_robj_sizes(self):
        """pagerank's robj is orders of magnitude larger (the paper's
        'very large reduction object')."""
        assert APP_PROFILES["pagerank"].robj_nbytes > 1000 * APP_PROFILES["knn"].robj_nbytes
        assert APP_PROFILES["kmeans"].robj_nbytes < 10_000

    def test_kmeans_needs_more_cloud_cores(self):
        assert APP_PROFILES["kmeans"].hybrid_cloud_cores == 22
        assert APP_PROFILES["kmeans"].cloud_only_cores == 44
        assert APP_PROFILES["knn"].hybrid_cloud_cores == 16

    def test_units_per_job_consistent(self):
        for p in APP_PROFILES.values():
            assert p.units_per_job * p.unit_nbytes == pytest.approx(
                PAPER_DATASET_NBYTES / PAPER_N_JOBS, rel=0.01
            )


class TestResourceParams:
    def test_cloud_cores_slower(self):
        p = ResourceParams()
        assert p.cloud_core_speed < p.local_core_speed
        assert p.cloud_core_speed == pytest.approx(16 / 22)

    def test_scaled_override(self):
        p = ResourceParams().scaled(wan_bw=1.0)
        assert p.wan_bw == 1.0
        assert p.s3_aggregate_bw == ResourceParams().s3_aggregate_bw

    def test_cloud_more_variable(self):
        p = ResourceParams()
        assert p.cloud_speed_sigma > p.local_speed_sigma

    def test_multithreaded_s3_beats_local_single_worker(self):
        """Calibration invariant behind 'env-cloud retrieval < env-local':
        8 S3 connections outrun one local worker's NIC share."""
        p = ResourceParams()
        assert 8 * p.s3_per_connection_bw > p.local_per_worker_bw
