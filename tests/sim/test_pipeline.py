"""Tests for the simulated prefetch pipeline and chunk-cache model."""

import pytest

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index, simulate_environment
from repro.sim.calibration import APP_PROFILES, ResourceParams
from repro.sim.simrun import FailureSpec, StragglerSpec, simulate_run


GB = 1 << 30


def env(local=4, cloud=4, frac=0.5):
    return EnvironmentConfig("test", frac, local, cloud)


def run_sim(app, environment, **kwargs):
    profile = APP_PROFILES[app]
    params = ResourceParams()
    return simulate_run(
        paper_index(profile, environment), environment.clusters(params),
        profile, params, **kwargs,
    )


class TestSimPrefetch:
    def test_prefetch_reduces_total(self):
        serial = simulate_environment("kmeans", env())
        pipelined = simulate_environment("kmeans", env(), prefetch=True)
        assert pipelined.total_s < serial.total_s
        assert pipelined.stats.jobs_processed == serial.stats.jobs_processed

    def test_stall_plus_overlap_recovers_serial_retrieval(self):
        """retrieval_s + overlap_s of the pipelined run tracks the serial
        engine's retrieval bar (same fetches, just hidden)."""
        serial = simulate_environment("kmeans", env())
        pipelined = simulate_environment("kmeans", env(), prefetch=True)
        for name, sc in serial.stats.clusters.items():
            pc = pipelined.stats.clusters[name]
            recovered = pc.retrieval_s + pc.overlap_s
            assert recovered == pytest.approx(sc.retrieval_s, rel=0.15)

    def test_prefetch_counters(self):
        res = simulate_environment("knn", env(), prefetch=True)
        for c in res.stats.clusters.values():
            # Each worker pays one serial first fetch; the rest pipeline.
            assert c.prefetch_hits + c.prefetch_misses == c.jobs_processed - c.n_workers

    def test_prefetch_deterministic(self):
        a = simulate_environment("knn", env(), seed=4, prefetch=True)
        b = simulate_environment("knn", env(), seed=4, prefetch=True)
        assert a.total_s == b.total_s

    def test_prefetch_composes_with_failures(self):
        """Pipelined workers die cleanly: their in-flight and prefetched
        jobs are reassigned and every job still completes exactly once."""
        baseline = run_sim("knn", env())
        res = run_sim(
            "knn", env(), prefetch=True,
            failures=[FailureSpec("local", 1, 10.0)],
        )
        assert res.stats.jobs_processed == baseline.stats.jobs_processed
        assert res.stats.n_failed_workers == 1
        assert res.stats.n_requeued_jobs >= 1
        assert res.stats.jobs_recovered >= 1

    def test_prefetch_failures_deterministic(self):
        kwargs = dict(
            prefetch=True, failures=[FailureSpec("cloud", 2, 20.0)], seed=3
        )
        a = run_sim("knn", env(), **kwargs)
        b = run_sim("knn", env(), **kwargs)
        assert a.total_s == b.total_s
        assert a.stats.n_requeued_jobs == b.stats.n_requeued_jobs

    def test_prefetch_rejects_speculation(self):
        with pytest.raises(ValueError, match="prefetch.*speculation"):
            run_sim("knn", env(), prefetch=True, speculation=True)

    def test_prefetch_composes_with_stragglers(self):
        res = run_sim(
            "knn", env(), prefetch=True,
            stragglers=[StragglerSpec("cloud", 1, 0.5)],
        )
        assert res.stats.jobs_processed > 0


class TestSimCache:
    def test_cache_created_and_returned(self):
        res = simulate_environment("kmeans", env(), cache_nbytes=16 * GB)
        assert res.caches is not None
        assert set(res.caches) == set(res.stats.clusters)
        assert all(len(c) > 0 for c in res.caches.values())

    def test_no_cache_by_default(self):
        res = simulate_environment("kmeans", env())
        assert res.caches is None
        assert res.stats.cache_hits == 0

    def test_warmed_cache_speeds_up_second_iteration(self):
        it1 = simulate_environment("kmeans", env(), cache_nbytes=16 * GB)
        it2 = simulate_environment("kmeans", env(), caches=it1.caches)
        assert it1.stats.cache_hits == 0
        assert it2.stats.cache_hit_rate > 0.8
        assert it2.total_s < it1.total_s

    def test_cache_hits_skip_links(self):
        """A fully warmed cache leaves (almost) no retrieval time."""
        it1 = simulate_environment("kmeans", env(), prefetch=True,
                                   cache_nbytes=16 * GB)
        it2 = simulate_environment("kmeans", env(), prefetch=True,
                                   caches=it1.caches)
        for name, c2 in it2.stats.clusters.items():
            c1 = it1.stats.clusters[name]
            assert c2.retrieval_s + c2.overlap_s < 0.25 * (
                c1.retrieval_s + c1.overlap_s
            )

    def test_budgeted_cache_evicts(self):
        """A cache smaller than the working set keeps evicting."""
        res = simulate_environment("kmeans", env(), cache_nbytes=1 * GB)
        assert any(c.evictions > 0 for c in res.caches.values())
        assert all(
            c.current_nbytes <= c.capacity_nbytes for c in res.caches.values()
        )
