"""Fault-tolerance tests: worker failures and job reassignment."""

import pytest

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.sim.calibration import APP_PROFILES, PAPER_N_JOBS, ResourceParams
from repro.sim.simrun import FailureSpec, simulate_run


def run(app="knn", env=None, failures=None, seed=0):
    env = env or EnvironmentConfig("h", 0.5, 8, 8)
    profile = APP_PROFILES[app]
    params = ResourceParams()
    return simulate_run(
        paper_index(profile, env), env.clusters(params), profile, params,
        seed=seed, failures=failures,
    )


class TestFailureSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureSpec("local", 0, 10.0)
        with pytest.raises(ValueError):
            FailureSpec("local", 1, -1.0)

    def test_unknown_cluster_rejected(self):
        with pytest.raises(ValueError):
            run(failures=[FailureSpec("mars", 1, 10.0)])

    def test_too_many_failures_rejected(self):
        with pytest.raises(ValueError):
            run(failures=[FailureSpec("local", 9, 10.0)])


class TestRecovery:
    def test_all_jobs_still_processed(self):
        baseline = run()
        failed = run(failures=[FailureSpec("local", 2, baseline.total_s / 3)])
        assert failed.stats.jobs_processed == PAPER_N_JOBS

    def test_failed_workers_recorded(self):
        baseline = run()
        failed = run(failures=[FailureSpec("local", 2, baseline.total_s / 3)])
        assert failed.stats.clusters["local"].workers_failed == 2
        assert failed.stats.clusters["cloud"].workers_failed == 0

    def test_failures_slow_the_run(self):
        baseline = run()
        failed = run(failures=[FailureSpec("local", 4, baseline.total_s / 4)])
        assert failed.total_s > baseline.total_s

    def test_more_failures_slower(self):
        baseline = run()
        t = baseline.total_s / 4
        one = run(failures=[FailureSpec("local", 1, t)])
        four = run(failures=[FailureSpec("local", 4, t)])
        assert four.total_s > one.total_s

    def test_dead_worker_stops_processing(self):
        baseline = run()
        t = baseline.total_s / 3
        failed = run(failures=[FailureSpec("local", 2, t)])
        dead = [w for w in failed.stats.clusters["local"].workers if w.failed]
        assert len(dead) == 2
        for w in dead:
            assert w.finished_at <= t + 1e-9
        # Survivors picked up the slack.
        alive = [w for w in failed.stats.clusters["local"].workers if not w.failed]
        assert max(w.jobs_processed for w in alive) >= max(
            w.jobs_processed for w in dead
        )

    def test_cross_cluster_takeover(self):
        """Killing the whole local cluster early shifts work to the cloud."""
        baseline = run()
        t = baseline.total_s / 4
        failed = run(failures=[FailureSpec("local", 8, t)])
        assert failed.stats.jobs_processed == PAPER_N_JOBS
        # The cloud cluster ends up stealing the local-resident jobs the
        # dead cluster never processed.
        assert failed.stats.clusters["cloud"].jobs_stolen > 0

    def test_early_single_cluster_total_failure_raises(self):
        env = EnvironmentConfig("solo", 1.0, 4, 0)
        with pytest.raises(RuntimeError):
            run(env=env, failures=[FailureSpec("local", 4, 1.0)])

    def test_failure_after_completion_is_noop(self):
        baseline = run()
        failed = run(failures=[FailureSpec("local", 2, baseline.total_s * 10)])
        assert failed.total_s == pytest.approx(baseline.total_s)
        assert failed.stats.clusters["local"].workers_failed == 0


class TestSchedulerReassign:
    def test_reassign_returns_job_to_front(self):
        from repro.data.formats import tokens_format
        from repro.data.index import build_index
        from repro.runtime.jobs import jobs_from_index
        from repro.runtime.scheduler import HeadScheduler

        jobs = jobs_from_index(build_index(tokens_format(), [8], chunk_units=2))
        sched = HeadScheduler(jobs)
        batch = sched.request_jobs("local", 2)
        sched.reassign(batch[0])
        sched.complete(batch[1])
        # The reassigned job comes back first (front of its file queue).
        again = sched.request_jobs("local", 1)
        assert again[0].job_id == batch[0].job_id
        sched.complete(again[0])

    def test_reassign_without_outstanding_raises(self):
        from repro.data.formats import tokens_format
        from repro.data.index import build_index
        from repro.runtime.jobs import jobs_from_index
        from repro.runtime.scheduler import HeadScheduler

        jobs = jobs_from_index(build_index(tokens_format(), [4], chunk_units=2))
        sched = HeadScheduler(jobs)
        with pytest.raises(RuntimeError):
            sched.reassign(jobs[0])

    def test_reassign_exactly_once_overall(self):
        from repro.data.formats import tokens_format
        from repro.data.index import build_index
        from repro.runtime.jobs import jobs_from_index
        from repro.runtime.scheduler import HeadScheduler

        jobs = jobs_from_index(build_index(tokens_format(), [12], chunk_units=2))
        sched = HeadScheduler(jobs)
        processed = []
        first = True
        while True:
            batch = sched.request_jobs("local", 3)
            if not batch:
                break
            for j in batch:
                if first:
                    sched.reassign(j)  # simulate one lost job
                    first = False
                else:
                    sched.complete(j)
                    processed.append(j.job_id)
        assert sorted(processed) == [j.job_id for j in jobs]
        assert sched.all_done
