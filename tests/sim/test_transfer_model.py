"""TransferSimModel: codec economics in the DES, validated against the
threaded engine's measured bytes-on-wire."""

import pytest

from repro.apps.wordcount import WordCountSpec
from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import simulate_environment
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_tokens
from repro.runtime import ClusterConfig, make_engine
from repro.sim.calibration import AppSimProfile
from repro.sim.simrun import SimClusterConfig, simulate_run
from repro.sim.topology import TransferSimModel
from repro.storage.local import MemoryStore


def env5050():
    return EnvironmentConfig("t", 0.5, 4, 4)


class TestModel:
    def test_defaults_identity(self):
        m = TransferSimModel()
        assert m.wire_nbytes(1000) == 1000
        assert m.decode_s(1000) == 0.0

    def test_wire_rounds_up_and_floors_at_one(self):
        m = TransferSimModel("zlib", 0.55, 0.0)
        assert m.wire_nbytes(1000) == 550
        assert m.wire_nbytes(1) == 1
        assert m.wire_nbytes(0) == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"compress_ratio": 0.0},
            {"compress_ratio": 1.5},
            {"compress_ratio": -0.2},
            {"decode_s_per_byte": -1e-9},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TransferSimModel("x", **{"compress_ratio": 0.5, **kwargs})

    def test_for_codec_known_and_unknown(self):
        for name in ("identity", "zlib", "lz4", "shuffle"):
            m = TransferSimModel.for_codec(name)
            assert m.codec == name
            assert 0 < m.compress_ratio <= 1
        assert TransferSimModel.for_codec("identity").compress_ratio == 1.0
        with pytest.raises(ValueError, match="unknown codec"):
            TransferSimModel.for_codec("gzip")

    def test_shuffle_beats_zlib_beats_identity_on_wire(self):
        n = 1 << 20
        wires = [
            TransferSimModel.for_codec(c).wire_nbytes(n)
            for c in ("shuffle", "zlib", "identity")
        ]
        assert wires[0] < wires[1] < wires[2]


class TestSimulatedCompression:
    def test_compression_cuts_wire_bytes_and_total(self):
        plain = simulate_environment("knn", env5050(), seed=4)
        comp = simulate_environment("knn", env5050(), seed=4, codec="shuffle")
        assert comp.stats.bytes_logical == plain.stats.bytes_logical
        ratio = TransferSimModel.for_codec("shuffle").compress_ratio
        assert comp.stats.bytes_wire == pytest.approx(
            plain.stats.bytes_wire * ratio, rel=0.01
        )
        assert comp.stats.decode_s > 0
        # knn is retrieval-dominated: shipping 40% of the bytes must
        # shorten the run even after paying for the decode.
        assert comp.total_s < plain.total_s

    def test_identity_transfer_is_a_noop(self):
        plain = simulate_environment("knn", env5050(), seed=4)
        ident = simulate_environment(
            "knn", env5050(), seed=4, transfer=TransferSimModel()
        )
        assert ident.total_s == plain.total_s
        assert ident.stats.bytes_wire == plain.stats.bytes_wire

    def test_explicit_transfer_overrides_codec_default(self):
        custom = TransferSimModel("zlib", 0.25, 0.0)
        res = simulate_environment(
            "knn", env5050(), seed=4, codec="zlib", transfer=custom
        )
        assert res.stats.compress_ratio == pytest.approx(0.25, rel=0.01)

    def test_adaptive_fetch_records_snapshots(self):
        res = simulate_environment(
            "knn", env5050(), seed=4, codec="shuffle", adaptive_fetch=True
        )
        snaps = [
            snap
            for c in res.stats.clusters.values()
            for snap in c.autotune.values()
        ]
        assert snaps, "no autotune snapshots in sim stats"
        assert all(s["n_samples"] > 0 for s in snaps)
        rows = res.stats.transfer_rows()
        assert rows and any(r["parts"] for r in rows)

    def test_deterministic_with_transfer_and_adaptive(self):
        kw = dict(seed=9, codec="shuffle", adaptive_fetch=True)
        a = simulate_environment("knn", env5050(), **kw)
        b = simulate_environment("knn", env5050(), **kw)
        assert a.total_s == b.total_s
        assert a.stats.bytes_wire == b.stats.bytes_wire


class TestSimMatchesThreadedEngine:
    def test_bytes_on_wire_within_5_percent(self):
        """The DES, fed the measured compress ratio of a real shuffled
        dataset, predicts the threaded engine's bytes-on-wire."""
        toks = generate_tokens(40000, 500, seed=21)
        spec = WordCountSpec()
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        index = write_dataset(
            toks, spec.fmt, stores["local"], n_files=4,
            chunk_units=2000, codec="shuffle",
        )
        index = distribute_dataset(
            index, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
        )
        enc_total = sum(c.enc_nbytes for c in index.chunks)
        logical_total = sum(c.nbytes for c in index.chunks)

        clusters = [
            ClusterConfig("local", "local", 2, 2),
            ClusterConfig("cloud", "cloud", 2, 2),
        ]
        rr = make_engine("threaded", clusters, stores, batch_size=2).run(
            spec, index
        )
        assert rr.stats.bytes_wire == enc_total
        assert rr.stats.bytes_logical == logical_total

        # Same index through the DES with the measured ratio.
        model = TransferSimModel("shuffle", enc_total / logical_total, 0.0)
        profile = AppSimProfile(
            "wordcount-sim", spec.fmt.unit_nbytes, 1e-7, 1 << 20
        )
        sim_clusters = [
            SimClusterConfig("local", "local", 2),
            SimClusterConfig("cloud", "cloud", 2),
        ]
        sres = simulate_run(index, sim_clusters, profile, transfer=model)
        assert sres.stats.bytes_logical == logical_total
        assert sres.stats.bytes_wire == pytest.approx(enc_total, rel=0.05)
