"""Unit/integration tests for multi-site topologies (>= 2 providers)."""

import math

import pytest

from repro.data.formats import RecordFormat
from repro.data.index import build_index
from repro.sim.calibration import APP_PROFILES, MB, PAPER_N_JOBS
from repro.sim.multisite import (
    InterSiteLink,
    MultiSiteTopology,
    SiteSpec,
    default_three_site_topology,
    simulate_multisite,
)
import numpy as np

from repro.bursting.driver import paper_index
from repro.bursting.config import EnvironmentConfig


def three_site_index(fracs=(0.34, 0.33, 0.33)):
    profile = APP_PROFILES["knn"]
    fmt = RecordFormat("sim", np.uint8, (profile.unit_nbytes,))
    units_per_file = profile.dataset_units // 32
    idx = build_index(fmt, [units_per_file] * 32, chunk_units=-(-units_per_file // 30))
    return idx.with_placement(
        {"campus": fracs[0], "aws": fracs[1], "azure": fracs[2]}
    )


class TestTopologyValidation:
    def test_duplicate_sites_rejected(self):
        s = SiteSpec("x", storage_bw=1.0)
        with pytest.raises(ValueError):
            MultiSiteTopology([s, s], [], "x")

    def test_unknown_head_rejected(self):
        s = SiteSpec("x", storage_bw=1.0)
        with pytest.raises(ValueError):
            MultiSiteTopology([s], [], "y")

    def test_link_to_unknown_site_rejected(self):
        s = SiteSpec("x", storage_bw=1.0)
        with pytest.raises(ValueError):
            MultiSiteTopology([s], [InterSiteLink("x", "y", 1.0)], "x")

    def test_duplicate_link_rejected(self):
        a, b = SiteSpec("a", storage_bw=1.0), SiteSpec("b", storage_bw=1.0)
        links = [InterSiteLink("a", "b", 1.0), InterSiteLink("b", "a", 2.0)]
        with pytest.raises(ValueError):
            MultiSiteTopology([a, b], links, "a")

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            InterSiteLink("a", "a", 1.0)

    def test_invalid_site_params(self):
        with pytest.raises(ValueError):
            SiteSpec("x", storage_bw=0)
        with pytest.raises(ValueError):
            SiteSpec("x", storage_bw=1.0, core_speed=0)


class TestRouting:
    @pytest.fixture
    def topo(self):
        return default_three_site_topology()

    def test_intra_site_path(self, topo):
        p = topo.fetch_path("campus", "campus", 8)
        assert [l.name for l in p.links] == ["campus-storage"]
        assert p.per_flow_cap == 12.5 * MB

    def test_cross_provider_path(self, topo):
        p = topo.fetch_path("aws", "azure", 4)
        assert {l.name for l in p.links} == {"azure-storage", "wan-aws-azure"}
        assert p.per_flow_cap == 4 * 1.5 * MB

    def test_missing_link_raises(self):
        sites = [SiteSpec("a", storage_bw=1.0), SiteSpec("b", storage_bw=1.0)]
        topo = MultiSiteTopology(sites, [], "a")
        with pytest.raises(ValueError):
            topo.fetch_path("a", "b", 1)

    def test_robj_routing(self, topo):
        assert topo.robj_path("campus").links == ()
        assert [l.name for l in topo.robj_path("azure").links] == ["wan-campus-azure"]

    def test_refill_rtt_includes_wan(self, topo):
        assert topo.refill_rtt("aws") > topo.refill_rtt("campus")

    def test_site_sigmas(self, topo):
        sig = topo.site_sigmas()
        assert sig["azure"] > sig["campus"]


class TestSimulateMultisite:
    def test_three_sites_complete_all_jobs(self):
        topo = default_three_site_topology()
        res = simulate_multisite(
            three_site_index(), topo,
            cores={"campus": 8, "aws": 8, "azure": 8},
            profile=APP_PROFILES["knn"],
        )
        assert res.stats.jobs_processed == PAPER_N_JOBS
        assert set(res.stats.clusters) == {"campus", "aws", "azure"}

    def test_site_without_compute_gets_drained_by_others(self):
        """Data on a provider with no rented cores is stolen remotely."""
        topo = default_three_site_topology()
        res = simulate_multisite(
            three_site_index((0.5, 0.0, 0.5)), topo,
            cores={"campus": 8, "aws": 8},  # nothing on azure
            profile=APP_PROFILES["knn"],
        )
        assert res.stats.jobs_processed == PAPER_N_JOBS
        stolen = res.stats.jobs_stolen
        assert stolen > 0

    def test_deterministic(self):
        topo = default_three_site_topology()
        kw = dict(
            cores={"campus": 4, "aws": 4, "azure": 4},
            profile=APP_PROFILES["knn"], seed=5,
        )
        a = simulate_multisite(three_site_index(), topo, **kw)
        b = simulate_multisite(three_site_index(), topo, **kw)
        assert a.total_s == b.total_s

    def test_two_cloud_providers_no_campus(self):
        """The paper's claim: data/compute across two cloud providers."""
        topo = default_three_site_topology(head="aws")
        res = simulate_multisite(
            three_site_index((0.0, 0.5, 0.5)), topo,
            cores={"aws": 16, "azure": 16},
            profile=APP_PROFILES["knn"],
        )
        assert res.stats.jobs_processed == PAPER_N_JOBS
        # azure's robj crosses the aws-azure link; aws's is free.
        assert res.stats.clusters["azure"].robj_transfer_s > 0
        assert res.stats.clusters["aws"].robj_transfer_s == pytest.approx(0.0, abs=1e-9)

    def test_unknown_data_site_rejected(self):
        topo = default_three_site_topology()
        idx = three_site_index().with_placement({"mars": 1.0})
        with pytest.raises(ValueError):
            simulate_multisite(idx, topo, cores={"campus": 4},
                               profile=APP_PROFILES["knn"])

    def test_cores_on_unknown_site_rejected(self):
        topo = default_three_site_topology()
        with pytest.raises(ValueError):
            simulate_multisite(
                three_site_index(), topo, cores={"mars": 4},
                profile=APP_PROFILES["knn"],
            )

    def test_two_site_special_case_matches_paper_shape(self):
        """A two-site MultiSiteTopology behaves like the built-in one:
        retrieval grows with the remote data share."""
        topo = default_three_site_topology()
        near = simulate_multisite(
            three_site_index((0.5, 0.5, 0.0)), topo,
            cores={"campus": 16, "aws": 16}, profile=APP_PROFILES["knn"],
        )
        far = simulate_multisite(
            three_site_index((1 / 6, 5 / 6, 0.0)), topo,
            cores={"campus": 16, "aws": 16}, profile=APP_PROFILES["knn"],
        )
        assert (
            far.stats.clusters["campus"].retrieval_s
            > near.stats.clusters["campus"].retrieval_s
        )


class TestThreadedEngineMultisite:
    def test_three_store_threaded_run(self, points):
        """The real engine is site-count agnostic too."""
        from repro.apps.knn import KnnSpec, knn_exact
        from repro.data.dataset import distribute_dataset, write_dataset
        from repro.data.formats import points_format
        from repro.runtime.engine import ClusterConfig, ThreadedEngine
        from repro.storage.local import MemoryStore

        stores = {
            "campus": MemoryStore("campus"),
            "aws": MemoryStore("aws"),
            "azure": MemoryStore("azure"),
        }
        idx = write_dataset(points, points_format(4), stores["campus"],
                            n_files=6, chunk_units=200)
        idx = distribute_dataset(
            idx, stores, {"campus": 0.34, "aws": 0.33, "azure": 0.33},
            stores["campus"],
        )
        engine = ThreadedEngine(
            [
                ClusterConfig("campus", "campus", 2),
                ClusterConfig("aws", "aws", 1),
                ClusterConfig("azure", "azure", 1),
            ],
            stores,
        )
        q = np.full(4, 0.5)
        rr = engine.run(KnnSpec(q, 5), idx)
        ref = knn_exact(points, q, 5)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])
        assert set(rr.stats.clusters) == {"campus", "aws", "azure"}
