"""Tests for deadline-driven elastic provisioning."""

import pytest

from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import paper_index
from repro.sim.calibration import APP_PROFILES, PAPER_N_JOBS, ResourceParams
from repro.sim.elastic import ElasticPolicy, simulate_elastic_run
from repro.sim.simrun import simulate_run


@pytest.fixture(scope="module")
def setup():
    env = EnvironmentConfig("h", 0.5, 8, 8)
    profile = APP_PROFILES["kmeans"]
    params = ResourceParams()
    index = paper_index(profile, env)
    clusters = env.clusters(params)
    base = simulate_run(index, clusters, profile, params, seed=0)
    return index, clusters, profile, params, base


class TestElasticPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticPolicy(deadline_s=0)
        with pytest.raises(ValueError):
            ElasticPolicy(deadline_s=10, check_interval_s=0)
        with pytest.raises(ValueError):
            ElasticPolicy(deadline_s=10, startup_latency_s=-1)
        with pytest.raises(ValueError):
            ElasticPolicy(deadline_s=10, step_cores=0)

    def test_requires_cloud_cluster(self, setup):
        index, _, profile, params, base = setup
        local_only = EnvironmentConfig("l", 0.5, 8, 0).clusters(params)
        with pytest.raises(ValueError):
            simulate_elastic_run(
                index, local_only, profile, ElasticPolicy(deadline_s=100), params
            )


class TestScaleOut:
    def test_loose_deadline_leases_nothing(self, setup):
        index, clusters, profile, params, base = setup
        policy = ElasticPolicy(deadline_s=base.total_s * 10)
        res = simulate_elastic_run(index, clusters, profile, policy, params, seed=0)
        assert res.extra_cores_leased == 0
        assert res.total_s == pytest.approx(base.total_s)
        assert res.met_deadline

    def test_tight_deadline_leases_and_speeds_up(self, setup):
        index, clusters, profile, params, base = setup
        policy = ElasticPolicy(
            deadline_s=base.total_s * 0.7,
            check_interval_s=base.total_s / 20,
            startup_latency_s=base.total_s / 20,
            step_cores=4,
            max_extra_cores=16,
        )
        res = simulate_elastic_run(index, clusters, profile, policy, params, seed=0)
        assert res.extra_cores_leased > 0
        assert res.total_s < base.total_s
        assert res.result.stats.jobs_processed == PAPER_N_JOBS

    def test_elastic_workers_start_after_boot(self, setup):
        index, clusters, profile, params, base = setup
        policy = ElasticPolicy(
            deadline_s=base.total_s * 0.7,
            check_interval_s=base.total_s / 20,
            startup_latency_s=base.total_s / 10,
        )
        res = simulate_elastic_run(index, clusters, profile, policy, params, seed=0)
        elastic = [
            c for name, c in res.result.stats.clusters.items()
            if name.startswith("cloud-elastic")
        ]
        assert elastic
        for c, lease_t in zip(elastic, res.lease_times_s):
            boot_done = lease_t + policy.startup_latency_s
            for w in c.workers:
                # Busy time can only accrue after the boot window.
                assert w.busy_s <= res.total_s - boot_done + 1e-6

    def test_lease_cap_respected(self, setup):
        index, clusters, profile, params, base = setup
        policy = ElasticPolicy(
            deadline_s=1.0,  # hopeless: would lease forever without the cap
            check_interval_s=base.total_s / 50,
            step_cores=4,
            max_extra_cores=8,
        )
        res = simulate_elastic_run(index, clusters, profile, policy, params, seed=0)
        assert res.extra_cores_leased == 8

    def test_more_budget_more_speed(self, setup):
        index, clusters, profile, params, base = setup
        kw = dict(
            deadline_s=base.total_s * 0.5,
            check_interval_s=base.total_s / 30,
            startup_latency_s=base.total_s / 30,
            step_cores=4,
        )
        small = simulate_elastic_run(
            index, clusters, profile, ElasticPolicy(max_extra_cores=4, **kw),
            params, seed=0,
        )
        big = simulate_elastic_run(
            index, clusters, profile, ElasticPolicy(max_extra_cores=24, **kw),
            params, seed=0,
        )
        assert big.extra_cores_leased > small.extra_cores_leased
        assert big.total_s < small.total_s

    def test_deterministic(self, setup):
        index, clusters, profile, params, base = setup
        policy = ElasticPolicy(
            deadline_s=base.total_s * 0.7, check_interval_s=base.total_s / 20
        )
        a = simulate_elastic_run(index, clusters, profile, policy, params, seed=0)
        b = simulate_elastic_run(index, clusters, profile, policy, params, seed=0)
        assert a.total_s == b.total_s
        assert a.lease_times_s == b.lease_times_s
