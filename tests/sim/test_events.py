"""Unit tests for the DES kernel."""

import pytest

from repro.sim.events import Event, SimEnv, all_of


class TestScheduling:
    def test_events_fire_in_time_order(self):
        env = SimEnv()
        log = []
        env.call_in(2.0, lambda: log.append("b"))
        env.call_in(1.0, lambda: log.append("a"))
        env.call_in(3.0, lambda: log.append("c"))
        env.run()
        assert log == ["a", "b", "c"]
        assert env.now == 3.0

    def test_ties_break_by_scheduling_order(self):
        env = SimEnv()
        log = []
        env.call_in(1.0, lambda: log.append(1))
        env.call_in(1.0, lambda: log.append(2))
        env.run()
        assert log == [1, 2]

    def test_run_until_stops_clock(self):
        env = SimEnv()
        log = []
        env.call_in(5.0, lambda: log.append("late"))
        env.run(until=2.0)
        assert log == []
        assert env.now == 2.0
        env.run()
        assert log == ["late"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimEnv().call_in(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        env = SimEnv()
        env.call_in(1.0, lambda: env.call_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            env.run()


class TestEvents:
    def test_succeed_delivers_value(self):
        env = SimEnv()
        ev = env.event()
        got = []
        ev.add_callback(got.append)
        ev.succeed("payload")
        env.run()
        assert got == ["payload"]

    def test_callback_after_trigger_fires(self):
        env = SimEnv()
        ev = env.event()
        ev.succeed(7)
        got = []
        ev.add_callback(got.append)
        env.run()
        assert got == [7]

    def test_double_succeed_rejected(self):
        env = SimEnv()
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()


class TestProcesses:
    def test_timeouts_advance_clock(self):
        env = SimEnv()
        trace = []

        def proc():
            yield 1.5
            trace.append(env.now)
            yield 0.5
            trace.append(env.now)

        env.process(proc())
        env.run()
        assert trace == [1.5, 2.0]

    def test_return_value_on_done_event(self):
        env = SimEnv()

        def proc():
            yield 1.0
            return "result"

        done = env.process(proc())
        env.run()
        assert done.triggered
        assert done.value == "result"

    def test_wait_on_event(self):
        env = SimEnv()
        gate = env.event()
        trace = []

        def waiter():
            value = yield gate
            trace.append((env.now, value))

        def opener():
            yield 3.0
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert trace == [(3.0, "open")]

    def test_yield_from_subgenerator(self):
        env = SimEnv()

        def inner():
            yield 1.0
            return 42

        def outer():
            value = yield from inner()
            return value + 1

        done = env.process(outer())
        env.run()
        assert done.value == 43

    def test_bad_yield_type_raises(self):
        env = SimEnv()

        def proc():
            yield "nope"

        # The first step runs eagerly, so the bad yield surfaces here.
        with pytest.raises(TypeError):
            env.process(proc())

    def test_negative_process_delay(self):
        env = SimEnv()

        def proc():
            yield -1.0

        with pytest.raises(ValueError):
            env.process(proc())


class TestAllOf:
    def test_waits_for_all(self):
        env = SimEnv()

        def sleeper(dt):
            yield dt
            return dt

        done = all_of(env, [env.process(sleeper(d)) for d in (3.0, 1.0, 2.0)])
        env.run()
        assert done.triggered
        assert done.value == [3.0, 1.0, 2.0]
        assert env.now == 3.0

    def test_empty_list_triggers_immediately(self):
        env = SimEnv()
        done = all_of(env, [])
        env.run()
        assert done.triggered
        assert done.value == []
