"""Unit tests for the simulated S3 store."""

import pytest

from repro.storage.bandwidth import FakeClock
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store


class TestFunctional:
    def test_put_get_roundtrip(self):
        s3 = SimulatedS3Store()
        s3.put("obj", b"payload")
        assert s3.get("obj") == b"payload"

    def test_range_get(self):
        s3 = SimulatedS3Store()
        s3.put("obj", b"0123456789")
        assert s3.get("obj", 3, 4) == b"3456"

    def test_wraps_existing_inner_store(self):
        inner = MemoryStore(location="cloud")
        inner.put("pre", b"existing")
        s3 = SimulatedS3Store(inner=inner)
        assert s3.get("pre") == b"existing"

    def test_list_and_delete(self):
        s3 = SimulatedS3Store()
        s3.put("a", b"1")
        s3.put("b", b"2")
        assert s3.list_keys() == ["a", "b"]
        s3.delete("a")
        assert s3.list_keys() == ["b"]

    def test_location_default_cloud(self):
        assert SimulatedS3Store().location == "cloud"

    def test_missing_key(self):
        with pytest.raises(KeyError):
            SimulatedS3Store().get("nope")


class TestShaping:
    def test_request_latency_charged(self):
        clock = FakeClock()
        s3 = SimulatedS3Store(profile=S3Profile(request_latency_s=0.25), clock=clock)
        s3.put("o", b"x")
        t0 = clock.now()
        s3.get("o")
        assert clock.now() - t0 == pytest.approx(0.25)

    def test_per_connection_cap(self):
        clock = FakeClock()
        s3 = SimulatedS3Store(profile=S3Profile(per_connection_bw=100.0), clock=clock)
        s3.put("o", b"x" * 200)
        t0 = clock.now()
        s3.get("o")
        assert clock.now() - t0 == pytest.approx(2.0)

    def test_aggregate_bucket_serializes(self):
        clock = FakeClock()
        s3 = SimulatedS3Store(profile=S3Profile(aggregate_bw=100.0), clock=clock)
        s3.put("o", b"x" * 100)
        s3.get("o")
        s3.get("o")
        # put(100) + two gets(100 each) = 3 seconds of aggregate service.
        assert clock.now() == pytest.approx(3.0)

    def test_unthrottled_is_instant(self):
        clock = FakeClock()
        s3 = SimulatedS3Store(clock=clock)
        s3.put("o", b"x" * 10000)
        s3.get("o")
        assert clock.now() == 0.0

    def test_stats_tracked(self):
        s3 = SimulatedS3Store()
        s3.put("o", b"abcd")
        s3.get("o", 0, 2)
        assert s3.stats.bytes_written == 4
        assert s3.stats.bytes_read == 2
