"""Unit tests for bandwidth shaping primitives."""

import pytest

from repro.storage.bandwidth import Clock, FakeClock, RateCap, TokenBucket


class TestFakeClock:
    def test_sleep_advances_time(self):
        clock = FakeClock()
        assert clock.now() == 0.0
        clock.sleep(2.5)
        assert clock.now() == 2.5

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            FakeClock().sleep(-1)


class TestTokenBucket:
    def test_first_acquire_from_idle_waits_for_duration(self):
        clock = FakeClock()
        tb = TokenBucket(rate=100.0, clock=clock)
        assert tb.acquire(50) == pytest.approx(0.5)

    def test_sequential_acquires_accumulate(self):
        clock = FakeClock()
        tb = TokenBucket(rate=100.0, clock=clock)
        w1 = tb.acquire(100)  # available at t=1
        w2 = tb.acquire(100)  # available at t=2
        assert w1 == pytest.approx(1.0)
        assert w2 == pytest.approx(2.0)

    def test_idle_time_resets_availability(self):
        clock = FakeClock()
        tb = TokenBucket(rate=100.0, clock=clock)
        tb.throttle(100)  # sleeps to t=1
        clock.sleep(10)   # t=11, bucket long idle
        assert tb.acquire(100) == pytest.approx(1.0)

    def test_throttle_sleeps(self):
        clock = FakeClock()
        tb = TokenBucket(rate=10.0, clock=clock)
        waited = tb.throttle(20)
        assert waited == pytest.approx(2.0)
        assert clock.now() == pytest.approx(2.0)

    def test_zero_bytes_no_wait(self):
        tb = TokenBucket(rate=10.0, clock=FakeClock())
        assert tb.acquire(0) == 0.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, clock=FakeClock()).acquire(-1)


class TestRateCap:
    def test_duration(self):
        assert RateCap(100.0).duration(250) == pytest.approx(2.5)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RateCap(0)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            RateCap(1.0).duration(-5)


class TestClock:
    def test_default_clock_monotonic(self):
        clock = Clock()
        t0 = clock.now()
        assert clock.now() >= t0
