"""AIMD retrieval-fan-out autotuner: convergence, backoff, re-probing."""

import pytest

from repro.storage.autotune import AimdAutotuner, AutotuneParams


def feed(tuner, bw_of_parts, nbytes=1 << 20, rounds=60):
    """Drive the controller against a synthetic bandwidth curve."""
    for _ in range(rounds):
        parts = tuner.parts_for(nbytes)
        bw = bw_of_parts(parts)
        tuner.record(nbytes, parts, nbytes / bw)


class TestParams:
    def test_defaults_valid(self):
        AutotuneParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_parts": 0},
            {"min_parts": 4, "max_parts": 2},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"backoff": 1.0},
            {"backoff": 0.0},
            {"probe_interval": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutotuneParams(**kwargs)


class TestControl:
    def test_grows_while_scaling(self):
        """Linear scaling: the tuner climbs to max_parts and stays."""
        t = AimdAutotuner(AutotuneParams(max_parts=8, min_part_nbytes=0))
        feed(t, lambda p: p * 10e6)
        assert t.parts == 8
        assert t.n_backoff == 0

    def test_finds_knee_and_spends_time_there(self):
        """Aggregate cap at 6 connections: the tuner converges to the
        knee and, over the steady state, mostly sits at it."""
        t = AimdAutotuner(AutotuneParams(max_parts=16, min_part_nbytes=0))
        used = []
        for _ in range(120):
            parts = t.parts_for(1 << 20)
            used.append(parts)
            bw = min(parts, 6) * 10e6
            t.record(1 << 20, parts, (1 << 20) / bw)
        tail = used[40:]
        assert 5.0 <= sum(tail) / len(tail) <= 7.0
        assert t.n_backoff >= 1
        snap = t.snapshot()
        assert snap["ceiling"] is None or snap["ceiling"] >= 5

    def test_backoff_is_multiplicative(self):
        t = AimdAutotuner(AutotuneParams(start_parts=8, max_parts=16,
                                         min_part_nbytes=0, probe_interval=1))
        # Flat curve: adding connections never pays.
        t.record(1 << 20, 8, 0.1)
        t.record(1 << 20, 9, 0.1)   # 9 parts, same bw -> plateau
        assert t.parts <= 8 * 1  # backed off from 9
        assert t.n_backoff + t.n_grow >= 1

    def test_reprobe_lifts_ceiling(self):
        """After the link improves, periodic re-probing rediscovers it."""
        p = AutotuneParams(max_parts=12, min_part_nbytes=0, reprobe_every=4)
        t = AimdAutotuner(p)
        knee = 3
        used = []
        for i in range(200):
            parts = t.parts_for(1 << 20)
            used.append(parts)
            if i == 100:
                knee = 10  # the path got faster mid-run
            bw = min(parts, knee) * 5e6
            t.record(1 << 20, parts, (1 << 20) / bw)
        # The re-probe walked past the stale ceiling and found the new
        # knee: the bandwidth estimate reflects ~10 connections' worth.
        assert t.effective_bw == pytest.approx(10 * 5e6, rel=0.1)
        assert max(used[120:]) >= 10

    def test_small_fetch_is_clamped_and_ignored(self):
        """A fetch below parts*min_part_nbytes uses fewer connections,
        and that sample must not drive a decision at the wrong setting."""
        t = AimdAutotuner(AutotuneParams(start_parts=8, min_part_nbytes=64 * 1024))
        assert t.parts_for(64 * 1024) == 1
        assert t.parts_for(8 * 64 * 1024) == 8
        before = t.parts
        for _ in range(10):
            t.record(64 * 1024, 1, 0.01)
        assert t.parts == before  # off-target samples never decide

    def test_zero_elapsed_ignored(self):
        t = AimdAutotuner()
        t.record(1 << 20, t.parts, 0.0)
        t.record(0, t.parts, 1.0)
        assert t.n_samples == 0

    def test_snapshot_fields(self):
        t = AimdAutotuner(name="local->cloud")
        feed(t, lambda p: p * 1e6, rounds=10)
        snap = t.snapshot()
        assert snap["name"] == "local->cloud"
        assert snap["parts"] == t.parts
        assert snap["n_samples"] == 10
        assert snap["effective_bw"] > 0
        assert snap["trajectory"][0] == AutotuneParams().start_parts
        assert all(isinstance(k, str) for k in snap["bw_at"])

    def test_effective_bw_tracks_best_setting(self):
        t = AimdAutotuner(AutotuneParams(min_part_nbytes=0))
        feed(t, lambda p: min(p, 4) * 2e6, rounds=40)
        assert t.effective_bw == pytest.approx(8e6, rel=0.05)
