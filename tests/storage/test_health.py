"""Unit tests for store health tracking: breakers, hedge policy, registry.

Breaker cooldowns advance on an injected fake clock, so no test here
ever sleeps.
"""

import pytest

from repro.storage.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    HealthRegistry,
    HedgePolicy,
    StoreHealth,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def make_health(policy=None, **kw):
    clock = FakeClock()
    policy = policy or BreakerPolicy(**kw)
    return StoreHealth("cloud", policy, clock=clock), clock


class TestPolicyParse:
    def test_breaker_full(self):
        p = BreakerPolicy.parse("fails=5,recovery=2.5,probes=2,close=3,error=0.9")
        assert p == BreakerPolicy(
            fail_threshold=5, recovery_s=2.5, probes=2, close_after=3,
            error_rate=0.9,
        )

    def test_breaker_empty_is_defaults(self):
        assert BreakerPolicy.parse("") == BreakerPolicy()

    def test_breaker_rejects_unknown(self):
        with pytest.raises(ValueError, match="malformed breaker option"):
            BreakerPolicy.parse("failures=3")

    def test_breaker_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(fail_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(error_rate=0.0)

    def test_hedge_full(self):
        p = HedgePolicy.parse("mult=2,min=0.1,max=3")
        assert p == HedgePolicy(multiplier=2.0, min_threshold_s=0.1, max_hedges=3)

    def test_hedge_empty_is_defaults(self):
        assert HedgePolicy.parse("") == HedgePolicy()

    def test_hedge_threshold_floors(self):
        p = HedgePolicy(multiplier=3.0, min_threshold_s=0.05)
        assert p.threshold_s(0.0) == 0.05     # cold EWMA: floor applies
        assert p.threshold_s(0.1) == pytest.approx(0.3)


class TestBreakerTransitions:
    def test_opens_after_consecutive_failures(self):
        h, _ = make_health(fail_threshold=3)
        assert h.state == BREAKER_CLOSED
        h.record_failure()
        h.record_failure()
        assert h.state == BREAKER_CLOSED
        h.record_failure()
        assert h.state == BREAKER_OPEN
        assert h.n_opened == 1

    def test_success_resets_the_streak(self):
        h, _ = make_health(fail_threshold=3, error_rate=1.0)
        h.record_failure()
        h.record_failure()
        h.record_success(0.01)
        h.record_failure()
        h.record_failure()
        assert h.state == BREAKER_CLOSED

    def test_error_rate_ewma_opens_without_streak(self):
        h, _ = make_health(fail_threshold=1000, error_rate=0.5)
        # Alternate to defeat the streak; the EWMA still climbs past 0.5
        # because failures dominate 2:1.
        for _ in range(20):
            h.record_failure()
            h.record_failure()
            h.record_success(0.01)
            if h.state == BREAKER_OPEN:
                break
        assert h.state == BREAKER_OPEN

    def test_open_rejects_until_cooldown(self):
        h, clock = make_health(fail_threshold=1, recovery_s=1.0)
        h.record_failure()
        assert h.state == BREAKER_OPEN
        assert not h.allow()
        assert h.n_rejected == 1
        clock.advance(0.5)
        assert not h.allow()
        clock.advance(0.6)  # past recovery_s
        assert h.state == BREAKER_HALF_OPEN
        assert h.n_half_opened == 1

    def test_half_open_admits_limited_probes(self):
        h, clock = make_health(fail_threshold=1, recovery_s=1.0, probes=2)
        h.record_failure()
        clock.advance(1.1)
        assert h.allow()          # probe 1
        assert h.allow()          # probe 2
        assert not h.allow()      # probes exhausted
        assert h.n_rejected == 1

    def test_probe_success_closes(self):
        h, clock = make_health(fail_threshold=1, recovery_s=1.0, close_after=2)
        h.record_failure()
        clock.advance(1.1)
        assert h.allow()
        h.record_success(0.01)
        assert h.state == BREAKER_HALF_OPEN  # needs close_after=2
        assert h.allow()
        h.record_success(0.01)
        assert h.state == BREAKER_CLOSED
        assert h.n_closed == 1

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        h, clock = make_health(fail_threshold=1, recovery_s=1.0)
        h.record_failure()
        clock.advance(1.1)
        assert h.allow()
        h.record_failure()
        assert h.state == BREAKER_OPEN
        assert h.n_opened == 2
        clock.advance(0.5)  # cooldown restarted: still open
        assert h.state == BREAKER_OPEN
        clock.advance(0.6)
        assert h.state == BREAKER_HALF_OPEN

    def test_success_none_releases_probe_without_latency_sample(self):
        h, clock = make_health(fail_threshold=1, recovery_s=1.0)
        h.record_failure()
        clock.advance(1.1)
        assert h.allow()
        h.record_success(None)  # e.g. a cache hit
        assert h.state == BREAKER_CLOSED
        assert h.latency_ewma_s == 0.0  # no sample recorded

    def test_no_policy_never_opens(self):
        h = StoreHealth("cloud", None)
        for _ in range(100):
            h.record_failure()
        assert h.state == BREAKER_CLOSED
        assert h.allow()


class TestLatencyEwma:
    def test_first_sample_seeds_then_smooths(self):
        h, _ = make_health()
        h.record_success(0.1)
        assert h.latency_ewma_s == pytest.approx(0.1)
        h.record_success(0.2)
        assert 0.1 < h.latency_ewma_s < 0.2

    def test_snapshot_counts(self):
        h, _ = make_health(fail_threshold=1)
        h.record_success(0.05)
        h.record_failure()
        snap = h.snapshot()
        assert snap["state"] == BREAKER_OPEN
        assert snap["n_successes"] == 1
        assert snap["n_failures"] == 1
        assert snap["n_opened"] == 1


class TestHealthRegistry:
    def test_health_is_lazily_created_and_cached(self):
        reg = HealthRegistry(BreakerPolicy())
        a = reg.health("cloud")
        assert reg.health("cloud") is a

    def test_order_is_stable_for_equal_rank(self):
        reg = HealthRegistry(BreakerPolicy())
        assert reg.order(["cloud", "local"]) == ["cloud", "local"]
        assert reg.order(["local", "cloud"]) == ["local", "cloud"]

    def test_order_pushes_open_breakers_last(self):
        clock = FakeClock()
        reg = HealthRegistry(BreakerPolicy(fail_threshold=1), clock=clock)
        reg.record_failure("cloud")
        assert reg.order(["cloud", "local"]) == ["local", "cloud"]

    def test_order_ignores_latency(self):
        # Slow-but-healthy stores keep their placement order: latency is
        # the hedge policy's input, not a reason to abandon the primary.
        reg = HealthRegistry(BreakerPolicy())
        reg.record_success("cloud", 5.0)
        reg.record_success("local", 0.001)
        assert reg.order(["cloud", "local"]) == ["cloud", "local"]

    def test_open_locations_excludes_half_open(self):
        clock = FakeClock()
        reg = HealthRegistry(BreakerPolicy(fail_threshold=1, recovery_s=1.0),
                             clock=clock)
        reg.record_failure("cloud")
        assert reg.open_locations() == {"cloud"}
        clock.advance(1.1)  # cooldown elapses: half-open, fetchable again
        assert reg.open_locations() == set()

    def test_transitions_and_snapshot_roll_up(self):
        clock = FakeClock()
        reg = HealthRegistry(BreakerPolicy(fail_threshold=1, recovery_s=1.0),
                             clock=clock)
        reg.record_failure("cloud")         # open (1)
        clock.advance(1.1)
        assert reg.health("cloud").allow()  # half-open (2)
        reg.record_success("cloud", 0.01)   # closed (3)
        assert reg.n_transitions == 3
        snap = reg.snapshot()
        assert snap["cloud"]["n_opened"] == 1
        assert snap["cloud"]["n_half_opened"] == 1
        assert snap["cloud"]["n_closed"] == 1
