"""Unit tests for the retry policy and the retrying fetch path."""

import pytest

from repro.storage.base import StorageStats
from repro.storage.faults import (
    FaultInjectingStore,
    FaultSpec,
    PermanentStorageError,
    TransientStorageError,
)
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryExhausted, RetryPolicy
from repro.storage.transfer import ParallelFetcher

FAST = RetryPolicy(max_attempts=5, base_delay_s=0.0, max_delay_s=0.0)


class TestRetryPolicyParse:
    def test_parse_full(self):
        p = RetryPolicy.parse("max=3,base=0.5,cap=2.0,deadline=10,timeout=1,seed=4")
        assert p == RetryPolicy(
            max_attempts=3, base_delay_s=0.5, max_delay_s=2.0,
            deadline_s=10.0, attempt_timeout_s=1.0, seed=4,
        )

    def test_parse_none_deadline(self):
        assert RetryPolicy.parse("deadline=none").deadline_s is None

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="malformed retry option"):
            RetryPolicy.parse("tries=3")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0)


class TestBackoff:
    def test_bounded_by_exponential_ceiling(self):
        p = RetryPolicy(base_delay_s=0.01, max_delay_s=1.0, seed=2)
        for attempt in range(1, 10):
            ceiling = min(1.0, 0.01 * 2**attempt)
            d = p.backoff_s(attempt, "tok")
            assert 0.0 <= d < ceiling

    def test_deterministic_per_token(self):
        p = RetryPolicy(seed=5)
        assert p.backoff_s(3, "a") == p.backoff_s(3, "a")
        assert p.backoff_s(3, "a") != p.backoff_s(3, "b")


class TestCall:
    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientStorageError("boom")
            return b"ok"

        retries = []
        out = FAST.call(flaky, token="t", on_retry=lambda e, a: retries.append(a))
        assert out == b"ok"
        assert calls["n"] == 3
        assert retries == [1, 2]

    def test_exhaustion_raises_retry_exhausted(self):
        def always():
            raise TransientStorageError("boom")

        with pytest.raises(RetryExhausted) as ei:
            FAST.call(always, token="t")
        assert ei.value.attempts == 5
        assert isinstance(ei.value.last_error, TransientStorageError)

    def test_non_retryable_passes_through_immediately(self):
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise PermanentStorageError("gone")

        with pytest.raises(PermanentStorageError):
            FAST.call(dead)
        assert calls["n"] == 1

    def test_deadline_stops_retrying(self):
        p = RetryPolicy(max_attempts=100, base_delay_s=0.05,
                        max_delay_s=0.05, deadline_s=0.05)

        def always():
            raise ConnectionError("down")

        with pytest.raises(RetryExhausted, match="deadline"):
            p.call(always)

    def test_attempt_timeout_is_retryable(self):
        import time

        p = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                        max_delay_s=0.0, attempt_timeout_s=0.01)

        def stuck():
            time.sleep(0.5)
            return b"late"

        with pytest.raises(RetryExhausted):
            p.call(stuck)


def make_faulty_fetcher(spec, *, n_threads=4, retry=FAST):
    inner = MemoryStore("cloud")
    inner.put("obj", bytes(range(256)) * 4)  # 1024 bytes
    store = FaultInjectingStore(inner, spec)
    return ParallelFetcher(store, n_threads=n_threads, retry=retry), store


class TestFetcherRetry:
    def test_subrange_retry_preserves_siblings(self):
        """Transient sub-range failures are retried in place; the fetch
        returns the correct bytes and records the retries."""
        fetcher, store = make_faulty_fetcher(FaultSpec(transient_p=0.5, seed=9))
        with fetcher:
            data = fetcher.fetch("obj", 0, 1024)
        assert data == bytes(range(256)) * 4
        assert fetcher.n_retries > 0
        assert fetcher.n_giveups == 0
        assert fetcher.bytes_retried > 0
        assert store.stats.n_retries == fetcher.n_retries
        assert store.stats.bytes_retried == fetcher.bytes_retried

    def test_retry_counters_deterministic(self):
        def run():
            fetcher, _ = make_faulty_fetcher(
                FaultSpec(transient_p=0.5, seed=9), n_threads=1
            )
            with fetcher:
                fetcher.fetch("obj", 0, 1024)
            return fetcher.n_retries, fetcher.bytes_retried

        assert run() == run()

    def test_exhausted_range_raises_retry_exhausted(self):
        fetcher, store = make_faulty_fetcher(
            FaultSpec(permanent_keys=()),  # no hash faults ...
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0),
        )
        # ... but a schedule that fails every call.
        store.spec = FaultSpec(fail_nth=tuple(range(1, 50)))
        with fetcher:
            with pytest.raises(RetryExhausted):
                fetcher.fetch("obj", 0, 1024)
        assert fetcher.n_giveups >= 1
        assert store.stats.n_errors >= 1

    def test_permanent_fault_fails_fast(self):
        fetcher, store = make_faulty_fetcher(FaultSpec(permanent_keys=("obj",)))
        with fetcher:
            with pytest.raises(PermanentStorageError):
                fetcher.fetch("obj", 0, 1024)
        assert fetcher.n_retries == 0

    def test_no_policy_behaves_as_before(self):
        inner = MemoryStore("cloud")
        inner.put("obj", b"x" * 64)
        store = FaultInjectingStore(inner, FaultSpec(fail_nth=(1,)))
        with ParallelFetcher(store, n_threads=1) as fetcher:
            with pytest.raises(TransientStorageError):
                fetcher.fetch("obj", 0, 64)


class TestStorageStats:
    def test_retry_and_error_recording(self):
        s = StorageStats()
        s.record_retry(100)
        s.record_retry(50)
        s.record_error()
        assert s.n_retries == 2
        assert s.bytes_retried == 150
        assert s.n_errors == 1

    def test_abandoned_recording(self):
        s = StorageStats()
        s.record_abandoned()
        s.record_abandoned()
        assert s.n_abandoned == 2


class TestAbandonGuard:
    def test_validation(self):
        import repro.storage.retry as retry_mod

        with pytest.raises(ValueError):
            retry_mod.AbandonGuard(0)

    def test_abandoned_attempts_are_counted_and_capped(self, monkeypatch):
        """Stuck attempts are abandoned (counted via on_abandon) and the
        number of live abandoned threads never exceeds the guard cap."""
        import threading

        import repro.storage.retry as retry_mod

        guard = retry_mod.AbandonGuard(max_abandoned=2)
        monkeypatch.setattr(retry_mod, "_ABANDON_GUARD", guard)
        release = threading.Event()
        p = RetryPolicy(max_attempts=1, base_delay_s=0.0, max_delay_s=0.0,
                        attempt_timeout_s=0.01)

        def stuck():
            release.wait(5.0)
            return b"late"

        abandoned = []
        try:
            for _ in range(2):  # fill the cap
                with pytest.raises(RetryExhausted):
                    p.call(stuck, on_abandon=lambda: abandoned.append(1))
            assert guard.live == 2
            assert guard.total_abandoned == 2
            assert len(abandoned) == 2
            # At the cap, the next attempt back-pressures (bounded wait)
            # instead of stacking a third live thread *before* starting.
            with pytest.raises(RetryExhausted):
                p.call(stuck, on_abandon=lambda: abandoned.append(1))
            assert guard.total_abandoned == 3
        finally:
            release.set()

    def test_release_unblocks_waiters(self):
        import repro.storage.retry as retry_mod

        guard = retry_mod.AbandonGuard(max_abandoned=1)
        guard.mark_abandoned()
        assert guard.live == 1
        guard.release()
        assert guard.live == 0
        guard.wait_for_slot(0.01)  # returns immediately: slot free

    def test_fast_attempt_never_touches_the_guard(self, monkeypatch):
        import repro.storage.retry as retry_mod

        guard = retry_mod.AbandonGuard(max_abandoned=1)
        monkeypatch.setattr(retry_mod, "_ABANDON_GUARD", guard)
        p = RetryPolicy(max_attempts=1, attempt_timeout_s=1.0)
        assert p.call(lambda: b"ok") == b"ok"
        assert guard.total_abandoned == 0
        assert guard.live == 0


class TestFetcherAbandonAccounting:
    def test_abandoned_attempts_surface_in_stats(self):
        """A store whose reads hang past the per-attempt timeout yields
        RetryExhausted and a nonzero n_abandoned on fetcher and store."""
        import threading

        class HangingStore(MemoryStore):
            def __init__(self):
                super().__init__("cloud")
                self.release = threading.Event()

            def get(self, key, offset=0, nbytes=None):
                self.release.wait(5.0)
                return super().get(key, offset, nbytes)

        store = HangingStore()
        store.put("obj", b"x" * 64)
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                             max_delay_s=0.0, attempt_timeout_s=0.01)
        try:
            with ParallelFetcher(store, n_threads=1, retry=policy) as fetcher:
                with pytest.raises(RetryExhausted):
                    fetcher.fetch("obj", 0, 64)
                assert fetcher.n_abandoned == 2  # both attempts timed out
                assert store.stats.n_abandoned == 2
        finally:
            store.release.set()
