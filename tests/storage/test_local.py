"""Unit tests for MemoryStore and LocalDiskStore."""

import threading

import pytest

from repro.storage.local import LocalDiskStore, MemoryStore


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return LocalDiskStore(str(tmp_path / "store"))


class TestStoreBasics:
    def test_put_get_roundtrip(self, store):
        store.put("a.bin", b"hello world")
        assert store.get("a.bin") == b"hello world"

    def test_range_read(self, store):
        store.put("a.bin", b"0123456789")
        assert store.get("a.bin", offset=2, nbytes=3) == b"234"

    def test_read_to_end(self, store):
        store.put("a.bin", b"0123456789")
        assert store.get("a.bin", offset=7) == b"789"

    def test_overwrite(self, store):
        store.put("a.bin", b"one")
        store.put("a.bin", b"two!")
        assert store.get("a.bin") == b"two!"
        assert store.size("a.bin") == 4

    def test_missing_key_raises(self, store):
        with pytest.raises(KeyError):
            store.get("nope")
        with pytest.raises(KeyError):
            store.size("nope")
        with pytest.raises(KeyError):
            store.delete("nope")

    def test_range_past_end_raises(self, store):
        store.put("a.bin", b"abc")
        with pytest.raises(ValueError):
            store.get("a.bin", offset=1, nbytes=5)

    def test_negative_offset_raises(self, store):
        store.put("a.bin", b"abc")
        with pytest.raises(ValueError):
            store.get("a.bin", offset=-1)

    def test_list_keys_sorted(self, store):
        store.put("b.bin", b"x")
        store.put("a.bin", b"y")
        assert store.list_keys() == ["a.bin", "b.bin"]

    def test_delete(self, store):
        store.put("a.bin", b"x")
        store.delete("a.bin")
        assert not store.exists("a.bin")

    def test_exists(self, store):
        assert not store.exists("a.bin")
        store.put("a.bin", b"x")
        assert store.exists("a.bin")

    def test_stats_counters(self, store):
        store.put("a.bin", b"abcd")
        store.get("a.bin", 0, 2)
        assert store.stats.n_puts == 1
        assert store.stats.bytes_written == 4
        assert store.stats.n_gets == 1
        assert store.stats.bytes_read == 2

    def test_concurrent_reads(self, store):
        store.put("a.bin", bytes(range(256)) * 64)
        errors = []

        def reader(off):
            try:
                for _ in range(50):
                    assert store.get("a.bin", off, 64) == (bytes(range(256)) * 64)[off : off + 64]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i * 64,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestLocalDiskStore:
    def test_nested_keys(self, tmp_path):
        store = LocalDiskStore(str(tmp_path / "s"))
        store.put("sub/dir/file.bin", b"data")
        assert store.get("sub/dir/file.bin") == b"data"
        assert store.list_keys() == ["sub/dir/file.bin"]

    def test_key_escape_rejected(self, tmp_path):
        store = LocalDiskStore(str(tmp_path / "s"))
        with pytest.raises(ValueError):
            store.put("../evil.bin", b"x")

    def test_persistence_across_instances(self, tmp_path):
        root = str(tmp_path / "s")
        LocalDiskStore(root).put("a.bin", b"persist")
        assert LocalDiskStore(root).get("a.bin") == b"persist"
