"""Chunk codec frames: round-trips, fallbacks, and corruption handling."""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.formats import edges_format, points_format, tokens_format
from repro.storage.codecs import (
    CODEC_NAMES,
    CODECS,
    HEADER_NBYTES,
    CodecError,
    decode_chunk,
    encode_chunk,
    frame_info,
    lz4_available,
    resolve_codec,
)

FORMATS = {
    "tokens": tokens_format(),
    "edges": edges_format(),
    "points-f64": points_format(4),
    "points-f32": points_format(3, np.float32),
}


def units_for(fmt, n, seed=0):
    rng = np.random.default_rng(seed)
    if np.issubdtype(fmt.dtype, np.integer):
        arr = rng.integers(0, 1000, size=(n,) + fmt.record_shape)
        return arr.astype(fmt.dtype)
    return rng.normal(size=(n,) + fmt.record_shape).astype(fmt.dtype)


class TestRoundTrip:
    @pytest.mark.parametrize("codec", CODEC_NAMES)
    @pytest.mark.parametrize("fmt_name", sorted(FORMATS))
    @pytest.mark.parametrize("n_units", [0, 1, 117])
    def test_every_codec_every_format(self, codec, fmt_name, n_units):
        fmt = FORMATS[fmt_name]
        raw = fmt.encode(units_for(fmt, n_units, seed=3))
        frame = encode_chunk(raw, codec, fmt.unit_nbytes)
        assert decode_chunk(frame) == raw
        name, stride, logical = frame_info(frame)
        assert stride == fmt.unit_nbytes
        assert logical == len(raw)
        # The name recorded is the codec actually used (lz4 may fall
        # back to zlib when the optional package is missing).
        assert name == resolve_codec(codec).name

    @pytest.mark.parametrize("codec", CODEC_NAMES)
    def test_non_aligned_tail(self, codec):
        """A trailing partial unit must survive the shuffle transform."""
        raw = bytes(range(256)) * 5 + b"tail"  # not a multiple of 8
        frame = encode_chunk(raw, codec, unit_nbytes=8)
        assert decode_chunk(frame) == raw

    @pytest.mark.parametrize("codec", CODEC_NAMES)
    def test_stride_one(self, codec):
        raw = b"abcabcabc" * 100
        assert decode_chunk(encode_chunk(raw, codec, 1)) == raw

    def test_shuffle_beats_zlib_on_numeric_data(self):
        fmt = points_format(4)
        raw = fmt.encode(units_for(fmt, 2000, seed=1))
        z = encode_chunk(raw, "zlib", fmt.unit_nbytes)
        s = encode_chunk(raw, "shuffle", fmt.unit_nbytes)
        assert len(s) < len(z) < len(raw)

    def test_identity_is_header_plus_raw(self):
        raw = b"x" * 100
        frame = encode_chunk(raw, "identity")
        assert len(frame) == HEADER_NBYTES + 100
        assert frame[HEADER_NBYTES:] == raw


@settings(max_examples=60, deadline=None)
@given(
    raw=st.binary(max_size=4096),
    stride=st.integers(min_value=1, max_value=64),
    codec=st.sampled_from([n for n in CODEC_NAMES if n != "lz4"]),
)
def test_round_trip_property(raw, stride, codec):
    assert decode_chunk(encode_chunk(raw, codec, stride)) == raw


class TestResolve:
    def test_unknown_name_is_value_error(self):
        with pytest.raises(ValueError, match="unknown codec"):
            resolve_codec("gzip")

    def test_lz4_fallback(self):
        c = resolve_codec("lz4")
        if lz4_available():
            assert c.name == "lz4"
        else:
            assert c.name == "zlib"

    def test_codec_ids_are_unique(self):
        ids = [c.codec_id for c in CODECS.values()]
        assert len(set(ids)) == len(ids)


class TestCorruption:
    def make(self, codec="zlib"):
        return encode_chunk(b"hello world" * 50, codec, 1)

    def test_truncated_header(self):
        with pytest.raises(CodecError, match="shorter than"):
            decode_chunk(self.make()[: HEADER_NBYTES - 1])

    def test_bad_magic(self):
        frame = b"XX" + self.make()[2:]
        with pytest.raises(CodecError, match="magic"):
            decode_chunk(frame)

    def test_bad_version(self):
        frame = bytearray(self.make())
        frame[2] = 99
        with pytest.raises(CodecError, match="version"):
            decode_chunk(bytes(frame))

    def test_unknown_codec_id(self):
        frame = bytearray(self.make())
        frame[3] = 200
        with pytest.raises(CodecError, match="codec id"):
            decode_chunk(bytes(frame))

    @pytest.mark.parametrize("codec", ["zlib", "shuffle"])
    def test_corrupt_payload(self, codec):
        frame = bytearray(self.make(codec))
        for i in range(HEADER_NBYTES, min(len(frame), HEADER_NBYTES + 8)):
            frame[i] ^= 0xFF
        with pytest.raises(CodecError, match="corrupt"):
            decode_chunk(bytes(frame))

    def test_length_mismatch(self):
        raw = b"hello world" * 50
        payload = zlib.compress(raw)
        # Header lies about the logical size.
        header = struct.pack("<2sBBIQ", b"RC", 1, 1, 1, len(raw) + 1)
        with pytest.raises(CodecError, match="declares"):
            decode_chunk(header + payload)

    def test_identity_truncated_payload(self):
        frame = encode_chunk(b"abcdef", "identity")
        with pytest.raises(CodecError, match="declares"):
            decode_chunk(frame[:-2])

    @pytest.mark.skipif(lz4_available(), reason="lz4 installed")
    def test_lz4_frame_without_package_is_codec_error(self):
        # Hand-build an lz4 frame (codec id 2): decoding must fail
        # cleanly, not return garbage.
        header = struct.pack("<2sBBIQ", b"RC", 1, 2, 1, 4)
        with pytest.raises(CodecError, match="lz4"):
            decode_chunk(header + b"\x00\x00\x00\x00")
