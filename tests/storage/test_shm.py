"""Unit tests for shared-memory segment lifecycle."""

import numpy as np
import pytest

from repro.storage.shm import (
    SharedSegment,
    SharedSegmentPool,
    attach_segment,
    close_quietly,
)


def shm_exists(name: str) -> bool:
    try:
        seg = attach_segment(name)
    except FileNotFoundError:
        return False
    close_quietly(seg)
    return True


class TestSharedSegment:
    def test_write_and_read_back(self):
        seg = SharedSegment(64)
        try:
            seg.write(b"hello")
            assert bytes(seg.buf[:5]) == b"hello"
        finally:
            seg.release()

    def test_buf_is_exactly_requested_size(self):
        seg = SharedSegment(100)  # kernel rounds the mapping to a page
        try:
            assert seg.buf.nbytes == 100
        finally:
            seg.release()

    def test_release_removes_name(self):
        seg = SharedSegment(16)
        name = seg.name
        assert shm_exists(name)
        seg.release()
        assert not shm_exists(name)

    def test_release_is_idempotent(self):
        seg = SharedSegment(16)
        seg.release()
        seg.release()

    def test_release_with_live_numpy_view_still_unlinks(self):
        seg = SharedSegment(80)
        name = seg.name
        arr = np.frombuffer(seg.buf, dtype=np.float64)
        arr[:] = 3.0
        seg.release()  # view still alive: must not raise, must unlink
        assert not shm_exists(name)
        assert arr[0] == 3.0  # pages survive until the view dies
        del arr

    def test_close_quietly_with_live_view_is_silent(self):
        """A still-aliased mapping closes without BufferError noise, and
        the neutralized object tolerates a later close/unlink cycle."""
        seg = SharedSegment(64)
        name = seg.name
        view = memoryview(seg.shm.buf)  # keeps the buffer exported
        close_quietly(seg.shm)  # must not raise despite the live view
        assert view[0] == 0  # pages stay mapped for the surviving view
        del view
        seg.release()  # second close is a no-op; unlink still happens
        assert not shm_exists(name)

    def test_close_quietly_tolerates_missing_privates(self):
        """The CPython-private ``_buf``/``_mmap``/``_fd`` attributes are
        only touched when present, so a renamed implementation degrades
        gracefully instead of raising AttributeError mid-cleanup."""

        class _OddShm:
            def close(self):
                raise BufferError("views still exported")

        close_quietly(_OddShm())  # no _buf/_mmap/_fd at all: no raise

    def test_oversized_write_rejected(self):
        seg = SharedSegment(4)
        try:
            with pytest.raises(ValueError):
                seg.write(b"toolong")
        finally:
            seg.release()

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            SharedSegment(0)

    def test_attach_sees_parent_writes(self):
        seg = SharedSegment(8)
        try:
            seg.write(b"abcdefgh")
            other = attach_segment(seg.name)
            try:
                assert bytes(other.buf[:8]) == b"abcdefgh"
            finally:
                close_quietly(other)
        finally:
            seg.release()


class TestSharedSegmentPool:
    def test_tracks_active_segments(self):
        pool = SharedSegmentPool()
        a = pool.create(16)
        b = pool.create(32)
        assert pool.active_count == 2
        assert pool.created == 2
        assert pool.bytes_through == 48
        pool.release(a)
        assert pool.active_count == 1
        assert pool.active_names == [b.name]
        pool.release(b)
        assert pool.active_count == 0

    def test_close_all_releases_everything(self):
        pool = SharedSegmentPool()
        names = [pool.create(16).name for _ in range(3)]
        pool.close_all()
        assert pool.active_count == 0
        assert not any(shm_exists(n) for n in names)

    def test_release_unknown_segment_is_safe(self):
        pool = SharedSegmentPool()
        seg = SharedSegment(16)
        pool.release(seg)  # not created through this pool: still released
        assert not shm_exists(seg.name)
