"""Unit tests for the byte-budgeted LRU chunk cache."""

import threading

import pytest

from repro.storage.cache import ChunkCache


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ChunkCache(0)
        with pytest.raises(ValueError):
            ChunkCache(-5)

    def test_put_get_roundtrip(self):
        cache = ChunkCache(100)
        assert cache.put("cloud", "a", 0, 4, b"data")
        assert cache.get("cloud", "a", 0, 4) == b"data"
        assert cache.hits == 1
        assert cache.misses == 0

    def test_miss_counts(self):
        cache = ChunkCache(100)
        assert cache.get("cloud", "a", 0, 4) is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_key_is_full_range_identity(self):
        """Distinct sub-ranges of one object never alias."""
        cache = ChunkCache(100)
        cache.put("cloud", "a", 0, 4, b"head")
        cache.put("cloud", "a", 4, 4, b"tail")
        cache.put("local", "a", 0, 4, b"loca")
        assert cache.get("cloud", "a", 0, 4) == b"head"
        assert cache.get("cloud", "a", 4, 4) == b"tail"
        assert cache.get("local", "a", 0, 4) == b"loca"
        assert len(cache) == 3

    def test_replace_same_key_updates_budget(self):
        cache = ChunkCache(10)
        cache.put("c", "k", 0, 8, b"x" * 8)
        cache.put("c", "k", 0, 8, b"y" * 8)
        assert cache.current_nbytes == 8
        assert len(cache) == 1
        assert cache.get("c", "k", 0, 8) == b"y" * 8

    def test_contains_does_not_touch_lru_or_counters(self):
        cache = ChunkCache(8)
        cache.put("c", "a", 0, 4, b"aaaa")
        cache.put("c", "b", 0, 4, b"bbbb")
        assert cache.contains("c", "a", 0, 4)
        assert cache.hits == 0 and cache.misses == 0
        # "a" is still LRU despite the probe: adding "c" evicts it.
        cache.put("c", "c", 0, 4, b"cccc")
        assert not cache.contains("c", "a", 0, 4)

    def test_clear_preserves_counters(self):
        cache = ChunkCache(100)
        cache.put("c", "a", 0, 4, b"aaaa")
        cache.get("c", "a", 0, 4)
        cache.clear()
        assert len(cache) == 0
        assert cache.current_nbytes == 0
        assert cache.hits == 1


class TestEviction:
    def test_evicts_least_recently_used_first(self):
        cache = ChunkCache(12)
        cache.put("c", "a", 0, 4, b"aaaa")
        cache.put("c", "b", 0, 4, b"bbbb")
        cache.put("c", "c", 0, 4, b"cccc")
        # Touch "a" so "b" becomes the LRU victim.
        assert cache.get("c", "a", 0, 4) is not None
        cache.put("c", "d", 0, 4, b"dddd")
        assert cache.get("c", "b", 0, 4) is None
        assert cache.get("c", "a", 0, 4) is not None
        assert cache.evictions == 1

    def test_byte_budget_never_exceeded(self):
        cache = ChunkCache(10)
        for i in range(20):
            cache.put("c", f"k{i}", 0, 3, b"xyz")
            assert cache.current_nbytes <= cache.capacity_nbytes
        assert cache.evictions > 0

    def test_large_entry_evicts_many(self):
        cache = ChunkCache(10)
        for i in range(3):
            cache.put("c", f"k{i}", 0, 3, b"xyz")
        cache.put("c", "big", 0, 9, b"x" * 9)
        assert len(cache) == 1
        assert cache.evictions == 3

    def test_oversized_value_rejected(self):
        cache = ChunkCache(4)
        assert not cache.put("c", "big", 0, 8, b"x" * 8)
        assert cache.rejected == 1
        assert len(cache) == 0

    def test_charge_nbytes_placeholder(self):
        """Simulator idiom: empty payloads charged at their true size."""
        cache = ChunkCache(100)
        cache.put("c", "a", 0, 64, b"", charge_nbytes=64)
        cache.put("c", "b", 0, 64, b"", charge_nbytes=64)
        assert cache.current_nbytes == 64
        assert cache.evictions == 1
        with pytest.raises(ValueError):
            cache.put("c", "d", 0, 1, b"", charge_nbytes=-1)

    def test_snapshot(self):
        cache = ChunkCache(16)
        cache.put("c", "a", 0, 4, b"aaaa")
        cache.get("c", "a", 0, 4)
        cache.get("c", "zz", 0, 4)
        snap = cache.snapshot()
        assert snap["capacity_nbytes"] == 16
        assert snap["current_nbytes"] == 4
        assert snap["entries"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == 0.5


class TestThreadSafety:
    def test_concurrent_get_put(self):
        """Hammer one small cache from many threads; invariants hold."""
        cache = ChunkCache(64)
        errors = []

        def worker(tid: int) -> None:
            try:
                for i in range(300):
                    key = f"k{(tid + i) % 16}"
                    cache.put("c", key, 0, 4, b"abcd")
                    got = cache.get("c", key, 0, 4)
                    assert got is None or got == b"abcd"
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert cache.current_nbytes <= cache.capacity_nbytes
        assert cache.current_nbytes == 4 * len(cache)
        assert cache.hits + cache.misses == 8 * 300
