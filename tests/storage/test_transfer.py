"""Unit tests for multi-threaded ranged retrieval."""

import pytest

from repro.storage.bandwidth import FakeClock
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store
from repro.storage.transfer import ParallelFetcher, split_range


class TestSplitRange:
    def test_even_split(self):
        assert split_range(0, 100, 4) == [(0, 25), (25, 25), (50, 25), (75, 25)]

    def test_uneven_split(self):
        parts = split_range(10, 10, 3)
        assert parts == [(10, 4), (14, 3), (17, 3)]

    def test_covers_range_exactly(self):
        parts = split_range(5, 97, 8)
        assert sum(n for _, n in parts) == 97
        assert parts[0][0] == 5
        for (o1, n1), (o2, _) in zip(parts, parts[1:]):
            assert o1 + n1 == o2

    def test_more_parts_than_bytes(self):
        parts = split_range(0, 2, 5)
        assert parts == [(0, 1), (1, 1)]

    def test_zero_bytes(self):
        assert split_range(0, 0, 3) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_range(0, 10, 0)
        with pytest.raises(ValueError):
            split_range(0, -1, 2)


class TestParallelFetcher:
    def test_reassembles_in_order(self):
        store = MemoryStore()
        data = bytes(range(256)) * 40
        store.put("o", data)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            assert fetcher.fetch("o") == data

    def test_range_fetch(self):
        store = MemoryStore()
        store.put("o", b"0123456789abcdef")
        with ParallelFetcher(store, n_threads=3) as fetcher:
            assert fetcher.fetch("o", 4, 8) == b"456789ab"

    def test_single_thread_uses_one_get(self):
        store = MemoryStore()
        store.put("o", b"x" * 100)
        fetcher = ParallelFetcher(store, n_threads=1)
        fetcher.fetch("o")
        assert store.stats.n_gets == 1

    def test_multi_thread_issues_multiple_gets(self):
        store = MemoryStore()
        store.put("o", b"x" * 100)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            fetcher.fetch("o")
        assert store.stats.n_gets == 4

    def test_small_fetch_skips_split(self):
        store = MemoryStore()
        store.put("o", b"xy")
        with ParallelFetcher(store, n_threads=8) as fetcher:
            assert fetcher.fetch("o") == b"xy"
        assert store.stats.n_gets == 1

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            ParallelFetcher(MemoryStore(), n_threads=0)

    def test_parallelism_beats_per_connection_cap(self):
        """The paper's optimization: n connections give ~n x throughput."""
        clock = FakeClock()
        profile = S3Profile(per_connection_bw=100.0)
        data = b"z" * 1000

        s3_serial = SimulatedS3Store(profile=profile, clock=clock)
        s3_serial.put("o", data)
        t0 = clock.now()
        ParallelFetcher(s3_serial, n_threads=1).fetch("o")
        serial_time = clock.now() - t0
        assert serial_time == pytest.approx(10.0, rel=0.01)
        # FakeClock serializes concurrent sleeps, so measure parallel
        # retrieval as the max of the per-part durations instead.
        parts = split_range(0, len(data), 4)
        per_part = max(n / 100.0 for _, n in parts)
        assert per_part * 4 <= serial_time + 1e-9
        assert per_part == pytest.approx(2.5)
