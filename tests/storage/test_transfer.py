"""Unit tests for multi-threaded ranged retrieval."""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.bandwidth import FakeClock
from repro.storage.cache import ChunkCache
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store
from repro.storage.transfer import ParallelFetcher, split_range


class TestSplitRange:
    def test_even_split(self):
        assert split_range(0, 100, 4) == [(0, 25), (25, 25), (50, 25), (75, 25)]

    def test_uneven_split(self):
        parts = split_range(10, 10, 3)
        assert parts == [(10, 4), (14, 3), (17, 3)]

    def test_covers_range_exactly(self):
        parts = split_range(5, 97, 8)
        assert sum(n for _, n in parts) == 97
        assert parts[0][0] == 5
        for (o1, n1), (o2, _) in zip(parts, parts[1:]):
            assert o1 + n1 == o2

    def test_more_parts_than_bytes(self):
        parts = split_range(0, 2, 5)
        assert parts == [(0, 1), (1, 1)]

    def test_zero_bytes(self):
        assert split_range(0, 0, 3) == []

    def test_single_byte_parts(self):
        """n_parts == nbytes degenerates to one byte per slice."""
        assert split_range(7, 3, 3) == [(7, 1), (8, 1), (9, 1)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_range(0, 10, 0)
        with pytest.raises(ValueError):
            split_range(0, -1, 2)


class TestParallelFetcher:
    def test_reassembles_in_order(self):
        store = MemoryStore()
        data = bytes(range(256)) * 40
        store.put("o", data)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            assert fetcher.fetch("o") == data

    def test_range_fetch(self):
        store = MemoryStore()
        store.put("o", b"0123456789abcdef")
        with ParallelFetcher(store, n_threads=3) as fetcher:
            assert fetcher.fetch("o", 4, 8) == b"456789ab"

    def test_single_thread_uses_one_get(self):
        store = MemoryStore()
        store.put("o", b"x" * 100)
        fetcher = ParallelFetcher(store, n_threads=1)
        fetcher.fetch("o")
        assert store.stats.n_gets == 1

    def test_multi_thread_issues_multiple_gets(self):
        store = MemoryStore()
        store.put("o", b"x" * 100)
        # floor disabled: exercise the raw splitting machinery
        with ParallelFetcher(store, n_threads=4, min_part_nbytes=0) as fetcher:
            fetcher.fetch("o")
        assert store.stats.n_gets == 4

    def test_min_part_floor_coalesces_small_fetches(self):
        """Default fetcher behaviour: a small range is one GET, not a
        spray of sub-4KB range requests."""
        store = MemoryStore()
        store.put("o", b"x" * 1000)
        with ParallelFetcher(store, n_threads=8) as fetcher:
            assert fetcher.fetch("o") == b"x" * 1000
        assert store.stats.n_gets == 1

    def test_min_part_floor_still_splits_large_fetches(self):
        store = MemoryStore()
        store.put("o", b"x" * (64 * 1024))
        with ParallelFetcher(store, n_threads=4) as fetcher:
            fetcher.fetch("o")
        assert store.stats.n_gets == 4

    def test_small_fetch_skips_split(self):
        store = MemoryStore()
        store.put("o", b"xy")
        with ParallelFetcher(store, n_threads=8) as fetcher:
            assert fetcher.fetch("o") == b"xy"
        assert store.stats.n_gets == 1

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            ParallelFetcher(MemoryStore(), n_threads=0)

    def test_subrange_error_is_deterministic(self):
        """The *earliest* failing sub-range's error surfaces, every time."""

        class FlakyStore(MemoryStore):
            def get(self, key, offset=0, nbytes=None):
                if offset in (25, 75):
                    raise OSError(f"part at {offset} failed")
                return super().get(key, offset, nbytes)

        store = FlakyStore()
        store.put("o", b"x" * 100)
        with ParallelFetcher(store, n_threads=4, min_part_nbytes=0) as fetcher:
            for _ in range(5):
                with pytest.raises(OSError, match="part at 25 failed"):
                    fetcher.fetch("o")

    def test_error_does_not_poison_later_fetches(self):
        class OnceBroken(MemoryStore):
            def __init__(self):
                super().__init__()
                self.fail = True

            def get(self, key, offset=0, nbytes=None):
                if self.fail and offset >= 50:
                    raise OSError("boom")
                return super().get(key, offset, nbytes)

        store = OnceBroken()
        store.put("o", b"y" * 100)
        with ParallelFetcher(store, n_threads=4, min_part_nbytes=0) as fetcher:
            with pytest.raises(OSError):
                fetcher.fetch("o")
            store.fail = False
            assert fetcher.fetch("o") == b"y" * 100

    def test_parallelism_beats_per_connection_cap(self):
        """The paper's optimization: n connections give ~n x throughput."""
        clock = FakeClock()
        profile = S3Profile(per_connection_bw=100.0)
        data = b"z" * 1000

        s3_serial = SimulatedS3Store(profile=profile, clock=clock)
        s3_serial.put("o", data)
        t0 = clock.now()
        ParallelFetcher(s3_serial, n_threads=1).fetch("o")
        serial_time = clock.now() - t0
        assert serial_time == pytest.approx(10.0, rel=0.01)
        # FakeClock serializes concurrent sleeps, so measure parallel
        # retrieval as the max of the per-part durations instead.
        parts = split_range(0, len(data), 4)
        per_part = max(n / 100.0 for _, n in parts)
        assert per_part * 4 <= serial_time + 1e-9
        assert per_part == pytest.approx(2.5)


class TestCacheIntegration:
    def test_second_fetch_served_from_cache(self):
        store = MemoryStore()
        store.put("o", b"q" * 64)
        cache = ChunkCache(1024)
        with ParallelFetcher(store, cache=cache) as fetcher:
            data1, hit1 = fetcher.fetch_with_info("o", 0, 64)
            data2, hit2 = fetcher.fetch_with_info("o", 0, 64)
        assert data1 == data2 == b"q" * 64
        assert (hit1, hit2) == (False, True)
        assert store.stats.n_gets == 1

    def test_distinct_ranges_do_not_alias(self):
        store = MemoryStore()
        store.put("o", b"ab" * 32)
        cache = ChunkCache(1024)
        with ParallelFetcher(store, cache=cache) as fetcher:
            assert fetcher.fetch("o", 0, 2) == b"ab"
            assert fetcher.fetch("o", 2, 2) == b"ab"
        assert store.stats.n_gets == 2

    def test_plain_fetch_fills_cache(self):
        store = MemoryStore()
        store.put("o", b"z" * 16)
        cache = ChunkCache(1024)
        with ParallelFetcher(store, cache=cache) as fetcher:
            fetcher.fetch("o", 0, 16)
        assert cache.contains(store.location, "o", 0, 16)


class TestFetchInto:
    def test_writes_range_into_buffer(self):
        store = MemoryStore()
        data = bytes(range(256)) * 4
        store.put("o", data)
        out = bytearray(512)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            n, info = fetcher.fetch_into("o", 128, 512, out)
        assert (n, info.cache_hit) == (512, False)
        assert info.bytes_wire == 512
        assert info.n_copies == 0  # part GETs wrote straight into out
        assert bytes(out) == data[128:640]

    def test_single_thread_path(self):
        store = MemoryStore()
        store.put("o", b"0123456789")
        out = bytearray(4)
        with ParallelFetcher(store, n_threads=1) as fetcher:
            n, info = fetcher.fetch_into("o", 3, 4, out)
        assert (n, info.cache_hit) == (4, False)
        assert bytes(out) == b"3456"

    def test_parallel_parts_write_disjoint_slices(self):
        """Each sub-range GET lands in its own slice; the reassembly
        equals the assembled fetch byte for byte."""
        store = MemoryStore()
        data = bytes((i * 7) % 256 for i in range(4096))
        store.put("o", data)
        out = bytearray(4096)
        with ParallelFetcher(store, n_threads=8, min_part_nbytes=0) as fetcher:
            fetcher.fetch_into("o", 0, 4096, out)
            assert bytes(out) == fetcher.fetch("o", 0, 4096)
        assert store.stats.n_gets >= 8

    def test_cache_hit_copies_into_buffer(self):
        store = MemoryStore()
        store.put("o", b"q" * 64)
        cache = ChunkCache(1024)
        out = bytearray(64)
        with ParallelFetcher(store, cache=cache) as fetcher:
            fetcher.fetch("o", 0, 64)  # warm
            n, info = fetcher.fetch_into("o", 0, 64, out)
        assert (n, info.cache_hit) == (64, True)
        assert info.bytes_wire == 0
        assert info.n_copies == 1  # the copy out of the cache entry
        assert bytes(out) == b"q" * 64
        assert store.stats.n_gets == 1

    def test_readonly_buffer_rejected(self):
        store = MemoryStore()
        store.put("o", b"abcd")
        with ParallelFetcher(store) as fetcher:
            with pytest.raises(ValueError):
                fetcher.fetch_into("o", 0, 4, b"xxxx")

    def test_undersized_buffer_rejected(self):
        store = MemoryStore()
        store.put("o", b"abcd")
        with ParallelFetcher(store) as fetcher:
            with pytest.raises(ValueError):
                fetcher.fetch_into("o", 0, 4, bytearray(2))


class TestFetchAsync:
    def test_result_and_timing(self):
        store = MemoryStore()
        store.put("o", b"p" * 128)
        with ParallelFetcher(store) as fetcher:
            handle = fetcher.fetch_async("o", 0, 128)
            assert handle.result() == b"p" * 128
            assert handle.done()
            assert handle.fetch_s >= 0.0
            assert handle.cache_hit is False

    def test_cache_hit_reported(self):
        store = MemoryStore()
        store.put("o", b"h" * 32)
        cache = ChunkCache(1024)
        with ParallelFetcher(store, cache=cache) as fetcher:
            fetcher.fetch("o", 0, 32)
            handle = fetcher.fetch_async("o", 0, 32)
            assert handle.result() == b"h" * 32
            assert handle.cache_hit is True

    def test_error_propagates_through_result(self):
        store = MemoryStore()  # "o" never stored
        with ParallelFetcher(store) as fetcher:
            handle = fetcher.fetch_async("o", 0, 8)
            with pytest.raises(KeyError):
                handle.result()

    def test_overlaps_with_foreground_work(self):
        """A slow async fetch runs while the caller does other work."""
        release = threading.Event()

        class SlowStore(MemoryStore):
            def get(self, key, offset=0, nbytes=None):
                release.wait(timeout=5.0)
                return super().get(key, offset, nbytes)

        store = SlowStore()
        store.put("o", b"s" * 8)
        with ParallelFetcher(store) as fetcher:
            handle = fetcher.fetch_async("o", 0, 8)
            assert not handle.done()  # still blocked in the store
            release.set()
            assert handle.result() == b"s" * 8

    def test_cancel_absorbs_running_fetch(self):
        store = MemoryStore()
        store.put("o", b"c" * 8)
        with ParallelFetcher(store) as fetcher:
            handle = fetcher.fetch_async("o", 0, 8)
            handle.cancel()  # must not raise regardless of progress
        # close() joined the pool; the handle is settled either way.
        assert handle.done() or True


class TestSplitRangeProperties:
    """Hypothesis coverage of the splitting invariants (satellite of the
    transfer layer: the floor must never break coverage/ordering)."""

    @given(
        offset=st.integers(min_value=0, max_value=1 << 40),
        nbytes=st.integers(min_value=0, max_value=1 << 22),
        n_parts=st.integers(min_value=1, max_value=64),
        floor=st.sampled_from([0, 1, 512, 4096, 64 * 1024]),
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants(self, offset, nbytes, n_parts, floor):
        parts = split_range(offset, nbytes, n_parts, floor)
        # Exact coverage, in order, no overlap.
        assert sum(n for _, n in parts) == nbytes
        pos = offset
        for o, n in parts:
            assert o == pos
            assert n > 0
            pos += n
        assert len(parts) <= n_parts
        if floor > 0 and len(parts) > 1:
            # Every emitted slice respects the floor.
            assert all(n >= floor for _, n in parts)
        if floor == 0 and parts:
            # Without a floor, sizes differ by at most one byte.
            sizes = [n for _, n in parts]
            assert max(sizes) - min(sizes) <= 1

    @given(
        nbytes=st.integers(min_value=1, max_value=1 << 20),
        n_parts=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_floor_bounds_part_count(self, nbytes, n_parts):
        floor = 4096
        parts = split_range(0, nbytes, n_parts, floor)
        assert len(parts) <= max(1, nbytes // floor)


class TestEncodedCacheCharge:
    """The chunk cache stores *encoded* bytes: its budget is charged at
    the wire size, so compressed chunks pack more per megabyte."""

    def make_index(self, codec):
        import numpy as np

        from repro.data.dataset import write_dataset
        from repro.data.formats import points_format

        rng = np.random.default_rng(5)
        pts = rng.normal(size=(4000, 4))
        store = MemoryStore("local")
        idx = write_dataset(
            pts, points_format(4), store, n_files=2, chunk_units=500,
            codec=codec,
        )
        return store, idx

    def test_cache_charged_at_encoded_size(self):
        store, idx = self.make_index("shuffle")
        enc_total = sum(c.enc_nbytes for c in idx.chunks)
        logical_total = sum(c.nbytes for c in idx.chunks)
        assert enc_total < logical_total
        cache = ChunkCache(64 << 20)
        with ParallelFetcher(store, cache=cache) as fetcher:
            for c in idx.chunks:
                fetcher.fetch_chunk(c)
        assert cache.current_nbytes == enc_total

    def test_decode_on_hit(self):
        store, idx = self.make_index("shuffle")
        cache = ChunkCache(64 << 20)
        with ParallelFetcher(store, cache=cache) as fetcher:
            chunk = idx.chunks[0]
            data1, info1 = fetcher.fetch_chunk(chunk)
            assert not info1.cache_hit
            assert info1.bytes_wire == chunk.enc_nbytes
            assert info1.bytes_logical == chunk.nbytes
            data2, info2 = fetcher.fetch_chunk(chunk)
            assert info2.cache_hit
            assert info2.bytes_wire == 0
            assert info2.decode_s >= 0.0
            assert data2 == data1

    def test_uncompressed_chunk_charges_logical_size(self):
        store, idx = self.make_index(None)
        cache = ChunkCache(64 << 20)
        with ParallelFetcher(store, cache=cache) as fetcher:
            chunk = idx.chunks[0]
            _, info = fetcher.fetch_chunk(chunk)
        assert info.bytes_wire == chunk.nbytes
        assert cache.current_nbytes == chunk.nbytes
