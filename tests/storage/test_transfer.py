"""Unit tests for multi-threaded ranged retrieval."""

import threading
import time

import pytest

from repro.storage.bandwidth import FakeClock
from repro.storage.cache import ChunkCache
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store
from repro.storage.transfer import ParallelFetcher, split_range


class TestSplitRange:
    def test_even_split(self):
        assert split_range(0, 100, 4) == [(0, 25), (25, 25), (50, 25), (75, 25)]

    def test_uneven_split(self):
        parts = split_range(10, 10, 3)
        assert parts == [(10, 4), (14, 3), (17, 3)]

    def test_covers_range_exactly(self):
        parts = split_range(5, 97, 8)
        assert sum(n for _, n in parts) == 97
        assert parts[0][0] == 5
        for (o1, n1), (o2, _) in zip(parts, parts[1:]):
            assert o1 + n1 == o2

    def test_more_parts_than_bytes(self):
        parts = split_range(0, 2, 5)
        assert parts == [(0, 1), (1, 1)]

    def test_zero_bytes(self):
        assert split_range(0, 0, 3) == []

    def test_single_byte_parts(self):
        """n_parts == nbytes degenerates to one byte per slice."""
        assert split_range(7, 3, 3) == [(7, 1), (8, 1), (9, 1)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_range(0, 10, 0)
        with pytest.raises(ValueError):
            split_range(0, -1, 2)


class TestParallelFetcher:
    def test_reassembles_in_order(self):
        store = MemoryStore()
        data = bytes(range(256)) * 40
        store.put("o", data)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            assert fetcher.fetch("o") == data

    def test_range_fetch(self):
        store = MemoryStore()
        store.put("o", b"0123456789abcdef")
        with ParallelFetcher(store, n_threads=3) as fetcher:
            assert fetcher.fetch("o", 4, 8) == b"456789ab"

    def test_single_thread_uses_one_get(self):
        store = MemoryStore()
        store.put("o", b"x" * 100)
        fetcher = ParallelFetcher(store, n_threads=1)
        fetcher.fetch("o")
        assert store.stats.n_gets == 1

    def test_multi_thread_issues_multiple_gets(self):
        store = MemoryStore()
        store.put("o", b"x" * 100)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            fetcher.fetch("o")
        assert store.stats.n_gets == 4

    def test_small_fetch_skips_split(self):
        store = MemoryStore()
        store.put("o", b"xy")
        with ParallelFetcher(store, n_threads=8) as fetcher:
            assert fetcher.fetch("o") == b"xy"
        assert store.stats.n_gets == 1

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            ParallelFetcher(MemoryStore(), n_threads=0)

    def test_subrange_error_is_deterministic(self):
        """The *earliest* failing sub-range's error surfaces, every time."""

        class FlakyStore(MemoryStore):
            def get(self, key, offset=0, nbytes=None):
                if offset in (25, 75):
                    raise OSError(f"part at {offset} failed")
                return super().get(key, offset, nbytes)

        store = FlakyStore()
        store.put("o", b"x" * 100)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            for _ in range(5):
                with pytest.raises(OSError, match="part at 25 failed"):
                    fetcher.fetch("o")

    def test_error_does_not_poison_later_fetches(self):
        class OnceBroken(MemoryStore):
            def __init__(self):
                super().__init__()
                self.fail = True

            def get(self, key, offset=0, nbytes=None):
                if self.fail and offset >= 50:
                    raise OSError("boom")
                return super().get(key, offset, nbytes)

        store = OnceBroken()
        store.put("o", b"y" * 100)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            with pytest.raises(OSError):
                fetcher.fetch("o")
            store.fail = False
            assert fetcher.fetch("o") == b"y" * 100

    def test_parallelism_beats_per_connection_cap(self):
        """The paper's optimization: n connections give ~n x throughput."""
        clock = FakeClock()
        profile = S3Profile(per_connection_bw=100.0)
        data = b"z" * 1000

        s3_serial = SimulatedS3Store(profile=profile, clock=clock)
        s3_serial.put("o", data)
        t0 = clock.now()
        ParallelFetcher(s3_serial, n_threads=1).fetch("o")
        serial_time = clock.now() - t0
        assert serial_time == pytest.approx(10.0, rel=0.01)
        # FakeClock serializes concurrent sleeps, so measure parallel
        # retrieval as the max of the per-part durations instead.
        parts = split_range(0, len(data), 4)
        per_part = max(n / 100.0 for _, n in parts)
        assert per_part * 4 <= serial_time + 1e-9
        assert per_part == pytest.approx(2.5)


class TestCacheIntegration:
    def test_second_fetch_served_from_cache(self):
        store = MemoryStore()
        store.put("o", b"q" * 64)
        cache = ChunkCache(1024)
        with ParallelFetcher(store, cache=cache) as fetcher:
            data1, hit1 = fetcher.fetch_with_info("o", 0, 64)
            data2, hit2 = fetcher.fetch_with_info("o", 0, 64)
        assert data1 == data2 == b"q" * 64
        assert (hit1, hit2) == (False, True)
        assert store.stats.n_gets == 1

    def test_distinct_ranges_do_not_alias(self):
        store = MemoryStore()
        store.put("o", b"ab" * 32)
        cache = ChunkCache(1024)
        with ParallelFetcher(store, cache=cache) as fetcher:
            assert fetcher.fetch("o", 0, 2) == b"ab"
            assert fetcher.fetch("o", 2, 2) == b"ab"
        assert store.stats.n_gets == 2

    def test_plain_fetch_fills_cache(self):
        store = MemoryStore()
        store.put("o", b"z" * 16)
        cache = ChunkCache(1024)
        with ParallelFetcher(store, cache=cache) as fetcher:
            fetcher.fetch("o", 0, 16)
        assert cache.contains(store.location, "o", 0, 16)


class TestFetchInto:
    def test_writes_range_into_buffer(self):
        store = MemoryStore()
        data = bytes(range(256)) * 4
        store.put("o", data)
        out = bytearray(512)
        with ParallelFetcher(store, n_threads=4) as fetcher:
            n, hit = fetcher.fetch_into("o", 128, 512, out)
        assert (n, hit) == (512, False)
        assert bytes(out) == data[128:640]

    def test_single_thread_path(self):
        store = MemoryStore()
        store.put("o", b"0123456789")
        out = bytearray(4)
        with ParallelFetcher(store, n_threads=1) as fetcher:
            n, hit = fetcher.fetch_into("o", 3, 4, out)
        assert (n, hit) == (4, False)
        assert bytes(out) == b"3456"

    def test_parallel_parts_write_disjoint_slices(self):
        """Each sub-range GET lands in its own slice; the reassembly
        equals the assembled fetch byte for byte."""
        store = MemoryStore()
        data = bytes((i * 7) % 256 for i in range(4096))
        store.put("o", data)
        out = bytearray(4096)
        with ParallelFetcher(store, n_threads=8) as fetcher:
            fetcher.fetch_into("o", 0, 4096, out)
            assert bytes(out) == fetcher.fetch("o", 0, 4096)
        assert store.stats.n_gets >= 8

    def test_cache_hit_copies_into_buffer(self):
        store = MemoryStore()
        store.put("o", b"q" * 64)
        cache = ChunkCache(1024)
        out = bytearray(64)
        with ParallelFetcher(store, cache=cache) as fetcher:
            fetcher.fetch("o", 0, 64)  # warm
            n, hit = fetcher.fetch_into("o", 0, 64, out)
        assert (n, hit) == (64, True)
        assert bytes(out) == b"q" * 64
        assert store.stats.n_gets == 1

    def test_readonly_buffer_rejected(self):
        store = MemoryStore()
        store.put("o", b"abcd")
        with ParallelFetcher(store) as fetcher:
            with pytest.raises(ValueError):
                fetcher.fetch_into("o", 0, 4, b"xxxx")

    def test_undersized_buffer_rejected(self):
        store = MemoryStore()
        store.put("o", b"abcd")
        with ParallelFetcher(store) as fetcher:
            with pytest.raises(ValueError):
                fetcher.fetch_into("o", 0, 4, bytearray(2))


class TestFetchAsync:
    def test_result_and_timing(self):
        store = MemoryStore()
        store.put("o", b"p" * 128)
        with ParallelFetcher(store) as fetcher:
            handle = fetcher.fetch_async("o", 0, 128)
            assert handle.result() == b"p" * 128
            assert handle.done()
            assert handle.fetch_s >= 0.0
            assert handle.cache_hit is False

    def test_cache_hit_reported(self):
        store = MemoryStore()
        store.put("o", b"h" * 32)
        cache = ChunkCache(1024)
        with ParallelFetcher(store, cache=cache) as fetcher:
            fetcher.fetch("o", 0, 32)
            handle = fetcher.fetch_async("o", 0, 32)
            assert handle.result() == b"h" * 32
            assert handle.cache_hit is True

    def test_error_propagates_through_result(self):
        store = MemoryStore()  # "o" never stored
        with ParallelFetcher(store) as fetcher:
            handle = fetcher.fetch_async("o", 0, 8)
            with pytest.raises(KeyError):
                handle.result()

    def test_overlaps_with_foreground_work(self):
        """A slow async fetch runs while the caller does other work."""
        release = threading.Event()

        class SlowStore(MemoryStore):
            def get(self, key, offset=0, nbytes=None):
                release.wait(timeout=5.0)
                return super().get(key, offset, nbytes)

        store = SlowStore()
        store.put("o", b"s" * 8)
        with ParallelFetcher(store) as fetcher:
            handle = fetcher.fetch_async("o", 0, 8)
            assert not handle.done()  # still blocked in the store
            release.set()
            assert handle.result() == b"s" * 8

    def test_cancel_absorbs_running_fetch(self):
        store = MemoryStore()
        store.put("o", b"c" * 8)
        with ParallelFetcher(store) as fetcher:
            handle = fetcher.fetch_async("o", 0, 8)
            handle.cancel()  # must not raise regardless of progress
        # close() joined the pool; the handle is settled either way.
        assert handle.done() or True
