"""Unit tests for deterministic fault injection."""

import pytest

from repro.storage.faults import (
    FaultInjectingStore,
    FaultSpec,
    PermanentStorageError,
    TransientStorageError,
    seeded_uniform,
)
from repro.storage.local import MemoryStore


def make_store(spec: FaultSpec) -> FaultInjectingStore:
    inner = MemoryStore("cloud")
    inner.put("f0", b"a" * 100)
    inner.put("f3", b"b" * 100)
    return FaultInjectingStore(inner, spec)


class TestSeededUniform:
    def test_range_and_determinism(self):
        vals = [seeded_uniform(7, "t", "k", i, 0) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert vals == [seeded_uniform(7, "t", "k", i, 0) for i in range(200)]

    def test_seed_changes_stream(self):
        a = [seeded_uniform(1, "t", "k", i) for i in range(50)]
        b = [seeded_uniform(2, "t", "k", i) for i in range(50)]
        assert a != b

    def test_roughly_uniform(self):
        vals = [seeded_uniform(0, "u", i) for i in range(2000)]
        assert 0.45 < sum(vals) / len(vals) < 0.55


class TestFaultSpecParse:
    def test_transient(self):
        spec = FaultSpec.parse("transient:p=0.3,seed=7")
        assert spec.transient_p == 0.3
        assert spec.seed == 7

    def test_permanent_and_latency_clauses_compose(self):
        spec = FaultSpec.parse("permanent:key=f3+latency:p=0.1,s=0.05")
        assert spec.permanent_keys == ("f3",)
        assert spec.latency_p == 0.1
        assert spec.latency_s == 0.05

    def test_nth_schedule(self):
        spec = FaultSpec.parse("transient:nth=3|7")
        assert spec.fail_nth == (3, 7)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.parse("bitflip:p=0.1")

    def test_rejects_unknown_option(self):
        with pytest.raises(ValueError, match="unknown option"):
            FaultSpec.parse("transient:q=0.1")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="transient_p"):
            FaultSpec(transient_p=1.5)


class TestFaultInjection:
    def test_no_spec_is_transparent(self):
        store = make_store(FaultSpec())
        assert store.get("f0", 0, 10) == b"a" * 10
        assert store.injection_counts() == {
            "transient": 0, "permanent": 0, "latency": 0,
        }

    def test_permanent_key_always_fails(self):
        store = make_store(FaultSpec(permanent_keys=("f3",)))
        for _ in range(3):
            with pytest.raises(PermanentStorageError):
                store.get("f3", 0, 10)
        assert store.get("f0", 0, 10) == b"a" * 10
        assert store.n_permanent == 3
        assert store.stats.n_errors == 3

    def test_transient_probability_deterministic(self):
        def run():
            store = make_store(FaultSpec(transient_p=0.4, seed=11))
            outcomes = []
            for off in range(0, 100, 10):
                try:
                    store.get("f0", off, 10)
                    outcomes.append("ok")
                except TransientStorageError:
                    outcomes.append("fail")
            return outcomes, store.n_transient

        a, na = run()
        b, nb = run()
        assert a == b
        assert na == nb
        assert "fail" in a and "ok" in a  # p=0.4 over 10 ranges: both occur

    def test_retried_range_rolls_fresh_die(self):
        """Attempt number feeds the hash, so a range that failed once is
        not doomed to fail forever."""
        store = make_store(FaultSpec(transient_p=0.5, seed=0))
        ok = 0
        for off in range(0, 100, 10):
            for _ in range(20):  # retry until success
                try:
                    store.get("f0", off, 10)
                    ok += 1
                    break
                except TransientStorageError:
                    pass
        assert ok == 10

    def test_nth_call_schedule(self):
        store = make_store(FaultSpec(fail_nth=(2,)))
        store.get("f0", 0, 10)
        with pytest.raises(TransientStorageError):
            store.get("f0", 10, 10)
        store.get("f0", 20, 10)
        assert store.n_transient == 1

    def test_latency_injection_counted(self):
        store = make_store(FaultSpec(latency_p=1.0, latency_s=0.0))
        store.get("f0", 0, 10)
        assert store.n_latency == 1

    def test_put_and_metadata_pass_through(self):
        store = make_store(FaultSpec(transient_p=1.0))
        store.put("new", b"xyz")
        assert store.size("new") == 3
        assert "new" in store.list_keys()
        store.delete("new")
        assert "new" not in store.list_keys()
