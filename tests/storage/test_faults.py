"""Unit tests for deterministic fault injection."""

import pytest

from repro.storage.faults import (
    FaultInjectingStore,
    FaultSpec,
    PermanentStorageError,
    TransientStorageError,
    seeded_uniform,
)
from repro.storage.local import MemoryStore


def make_store(spec: FaultSpec) -> FaultInjectingStore:
    inner = MemoryStore("cloud")
    inner.put("f0", b"a" * 100)
    inner.put("f3", b"b" * 100)
    return FaultInjectingStore(inner, spec)


class TestSeededUniform:
    def test_range_and_determinism(self):
        vals = [seeded_uniform(7, "t", "k", i, 0) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert vals == [seeded_uniform(7, "t", "k", i, 0) for i in range(200)]

    def test_seed_changes_stream(self):
        a = [seeded_uniform(1, "t", "k", i) for i in range(50)]
        b = [seeded_uniform(2, "t", "k", i) for i in range(50)]
        assert a != b

    def test_roughly_uniform(self):
        vals = [seeded_uniform(0, "u", i) for i in range(2000)]
        assert 0.45 < sum(vals) / len(vals) < 0.55


class TestFaultSpecParse:
    def test_transient(self):
        spec = FaultSpec.parse("transient:p=0.3,seed=7")
        assert spec.transient_p == 0.3
        assert spec.seed == 7

    def test_permanent_and_latency_clauses_compose(self):
        spec = FaultSpec.parse("permanent:key=f3+latency:p=0.1,s=0.05")
        assert spec.permanent_keys == ("f3",)
        assert spec.latency_p == 0.1
        assert spec.latency_s == 0.05

    def test_nth_schedule(self):
        spec = FaultSpec.parse("transient:nth=3|7")
        assert spec.fail_nth == (3, 7)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.parse("bitflip:p=0.1")

    def test_rejects_unknown_option(self):
        with pytest.raises(ValueError, match="unknown option"):
            FaultSpec.parse("transient:q=0.1")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="transient_p"):
            FaultSpec(transient_p=1.5)


class TestFaultInjection:
    def test_no_spec_is_transparent(self):
        store = make_store(FaultSpec())
        assert store.get("f0", 0, 10) == b"a" * 10
        assert store.injection_counts() == {
            "transient": 0, "permanent": 0, "latency": 0, "stall": 0,
        }

    def test_permanent_key_always_fails(self):
        store = make_store(FaultSpec(permanent_keys=("f3",)))
        for _ in range(3):
            with pytest.raises(PermanentStorageError):
                store.get("f3", 0, 10)
        assert store.get("f0", 0, 10) == b"a" * 10
        assert store.n_permanent == 3
        assert store.stats.n_errors == 3

    def test_transient_probability_deterministic(self):
        def run():
            store = make_store(FaultSpec(transient_p=0.4, seed=11))
            outcomes = []
            for off in range(0, 100, 10):
                try:
                    store.get("f0", off, 10)
                    outcomes.append("ok")
                except TransientStorageError:
                    outcomes.append("fail")
            return outcomes, store.n_transient

        a, na = run()
        b, nb = run()
        assert a == b
        assert na == nb
        assert "fail" in a and "ok" in a  # p=0.4 over 10 ranges: both occur

    def test_retried_range_rolls_fresh_die(self):
        """Attempt number feeds the hash, so a range that failed once is
        not doomed to fail forever."""
        store = make_store(FaultSpec(transient_p=0.5, seed=0))
        ok = 0
        for off in range(0, 100, 10):
            for _ in range(20):  # retry until success
                try:
                    store.get("f0", off, 10)
                    ok += 1
                    break
                except TransientStorageError:
                    pass
        assert ok == 10

    def test_nth_call_schedule(self):
        store = make_store(FaultSpec(fail_nth=(2,)))
        store.get("f0", 0, 10)
        with pytest.raises(TransientStorageError):
            store.get("f0", 10, 10)
        store.get("f0", 20, 10)
        assert store.n_transient == 1

    def test_latency_injection_counted(self):
        store = make_store(FaultSpec(latency_p=1.0, latency_s=0.0))
        store.get("f0", 0, 10)
        assert store.n_latency == 1

    def test_put_and_metadata_pass_through(self):
        store = make_store(FaultSpec(transient_p=1.0))
        store.put("new", b"xyz")
        assert store.size("new") == 3
        assert "new" in store.list_keys()
        store.delete("new")
        assert "new" not in store.list_keys()

    def test_disarmed_injects_nothing_until_armed(self):
        inner = MemoryStore("cloud")
        inner.put("f3", b"b" * 100)
        store = FaultInjectingStore(
            inner, FaultSpec(permanent_keys=("f3",)), armed=False
        )
        assert store.get("f3", 0, 10) == b"b" * 10  # dormant: passes through
        store.arm()
        with pytest.raises(PermanentStorageError):
            store.get("f3", 0, 10)
        store.disarm()
        assert store.get("f3", 0, 10) == b"b" * 10
        assert store.n_permanent == 1  # only the armed read counted


class TestStallInjection:
    def test_stall_parse(self):
        spec = FaultSpec.parse("stall:p=0.25,s=0.1,seed=3")
        assert spec.stall_p == 0.25
        assert spec.stall_s == 0.1
        assert spec.seed == 3

    def test_stall_validation(self):
        with pytest.raises(ValueError, match="stall_p"):
            FaultSpec(stall_p=-0.1)
        with pytest.raises(ValueError, match="stall_s"):
            FaultSpec(stall_p=0.5, stall_s=-1.0)

    def test_stall_duration_is_pure_and_seeded(self):
        spec = FaultSpec(stall_p=0.5, stall_s=0.1, seed=9)
        durations = [spec.stall_duration_s("k", off, 0) for off in range(40)]
        assert durations == [spec.stall_duration_s("k", off, 0) for off in range(40)]
        hit = [d for d in durations if d is not None]
        assert hit and len(hit) < 40  # p=0.5: some stall, some don't
        assert all(0.05 <= d <= 0.1 for d in hit)  # in [s/2, s]

    def test_stall_depends_on_attempt(self):
        # A stalled (key, offset) is not stalled identically forever:
        # the attempt number feeds the hash like the other fault kinds.
        spec = FaultSpec(stall_p=0.5, stall_s=0.1, seed=9)
        outcomes = {
            a: spec.stall_duration_s("k", 0, a) is not None for a in range(50)
        }
        assert len(set(outcomes.values())) == 2

    def test_injected_stalls_use_the_sleeper(self):
        sleeps: list[float] = []
        inner = MemoryStore("cloud")
        inner.put("f0", b"a" * 100)
        store = FaultInjectingStore(
            inner, FaultSpec(stall_p=1.0, stall_s=0.1, seed=9),
            sleeper=sleeps.append,
        )
        for off in range(0, 50, 10):
            store.get("f0", off, 10)
        assert store.n_stall == 5
        assert len(sleeps) == 5
        assert store.stalled_s == pytest.approx(sum(sleeps))
        expected = [
            FaultSpec(stall_p=1.0, stall_s=0.1, seed=9).stall_duration_s(
                "f0", off, 0
            )
            for off in range(0, 50, 10)
        ]
        assert sleeps == expected  # schedule exactly as the pure function says

    def test_injection_counts_snapshot_is_consistent_under_threads(self):
        """Concurrent injections never produce a torn injection_counts
        snapshot: every observed snapshot equals a prefix-consistent
        total (stall count matches what the pure schedule implies for
        the reads finished so far is too strong; instead, sum matches
        final counters at the end and intermediate reads never go
        backwards)."""
        import threading

        inner = MemoryStore("cloud")
        inner.put("f0", b"a" * 1000)
        store = FaultInjectingStore(
            inner,
            FaultSpec(stall_p=0.5, stall_s=0.001, seed=5, latency_p=0.5,
                      latency_s=0.0),
            sleeper=lambda s: None,
        )
        stop = threading.Event()
        snapshots: list[dict] = []
        bad: list[str] = []

        def reader():
            prev_total = 0
            while not stop.is_set():
                snap = store.injection_counts()
                total = sum(snap.values())
                if total < prev_total:
                    bad.append(f"total went backwards: {snap}")
                prev_total = total
                snapshots.append(snap)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        workers = [
            threading.Thread(
                target=lambda: [store.get("f0", off, 10) for off in range(0, 500, 10)]
            )
            for _ in range(4)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        for t in threads:
            t.join()
        assert not bad
        final = store.injection_counts()
        assert final["stall"] == store.n_stall
        assert final["latency"] == store.n_latency
        assert final["stall"] > 0 and final["latency"] > 0
