"""Replica-aware retrieval: placement, failover, hedging, breakers.

Chaos is always the seeded fault injector (permanent faults and seeded
stalls); test code itself never sleeps on the clock.
"""

import numpy as np
import pytest

from repro.data.chunks import ChunkInfo, ChunkSource
from repro.data.dataset import (
    distribute_dataset,
    read_all_units,
    replicate_dataset,
    write_dataset,
)
from repro.data.formats import RecordFormat
from repro.runtime.core import ClusterConfig, make_cluster_fetchers
from repro.storage.faults import FaultInjectingStore, FaultSpec
from repro.storage.health import BreakerPolicy, HealthRegistry, HedgePolicy
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryPolicy
from repro.storage.transfer import ParallelFetcher

FMT = RecordFormat("bytes", np.uint8, ())
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)


def make_dataset(stores, *, n=240, n_files=3, local_fraction=0.5, codec=None,
                 n_replicas=1):
    units = np.arange(n, dtype=np.uint8).reshape(n, *FMT.record_shape)
    index = write_dataset(
        units, FMT, stores["local"], n_files=n_files, chunk_units=20,
        codec=codec,
    )
    index = distribute_dataset(
        index, stores, {"local": local_fraction, "cloud": 1 - local_fraction},
        stores["local"],
    )
    return units, replicate_dataset(index, stores, n_replicas=n_replicas)


def make_fetchers(stores, *, health=None, hedge=None, retry=FAST_RETRY):
    cluster = ClusterConfig("local", "local", n_workers=1, retrieval_threads=2)
    return make_cluster_fetchers(
        stores, cluster, retry=retry, health=health, hedge=hedge
    )


class TestChunkSource:
    def test_round_trip(self):
        src = ChunkSource("cloud", "part-0.bin", enc_offset=10, enc_nbytes=99)
        assert ChunkSource.from_dict(src.to_dict()) == src

    def test_none_enc_range_omitted(self):
        src = ChunkSource("cloud", "part-0.bin")
        d = src.to_dict()
        assert "enc_offset" not in d and "enc_nbytes" not in d
        assert ChunkSource.from_dict(d) == src

    def test_chunk_info_round_trip_with_replicas(self):
        c = ChunkInfo(
            chunk_id=0, file_id=0, key="part-0.bin", location="local",
            offset=0, nbytes=100, n_units=10,
            replicas=(ChunkSource("cloud", "part-0.bin"),),
        )
        rt = ChunkInfo.from_dict(c.to_dict())
        assert rt.replicas == c.replicas
        assert rt.sources[0].location == "local"  # primary first
        assert rt.sources[1].location == "cloud"

    def test_no_replicas_key_when_empty(self):
        c = ChunkInfo(
            chunk_id=0, file_id=0, key="k", location="local",
            offset=0, nbytes=10, n_units=1,
        )
        assert "replicas" not in c.to_dict()
        assert c.sources == (ChunkSource("local", "k"),)


class TestReplicateDataset:
    def test_replicas_attached_and_bytes_copied(self):
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        units, index = make_dataset(stores)
        assert index.meta["n_replicas"] == 1
        for c in index.chunks:
            assert len(c.sources) == 2
            locs = {s.location for s in c.sources}
            assert locs == {"local", "cloud"}
        # Every file readable from both stores, byte-identical.
        for f in index.files:
            assert stores["local"].get(f.key) == stores["cloud"].get(f.key)

    def test_encoded_replicas_serve_same_ranges(self):
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        units, index = make_dataset(stores, codec="zlib")
        for c in index.chunks:
            for s in c.sources:
                assert s.enc_offset == c.enc_offset
                assert s.enc_nbytes == c.enc_nbytes

    def test_zero_replicas_is_identity(self):
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        units = np.arange(60, dtype=np.uint8)
        index = write_dataset(units, FMT, stores["local"], n_files=2,
                              chunk_units=10)
        assert replicate_dataset(index, stores, n_replicas=0) is index

    def test_too_few_stores_rejected(self):
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        units = np.arange(60, dtype=np.uint8)
        index = write_dataset(units, FMT, stores["local"], n_files=2,
                              chunk_units=10)
        with pytest.raises(ValueError, match="replicas need"):
            replicate_dataset(index, stores, n_replicas=2)

    def test_read_all_units_unaffected(self):
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        units, index = make_dataset(stores)
        np.testing.assert_array_equal(read_all_units(index, stores), units)


def fetch_everything(index, fetchers):
    """Fetch every chunk through the fetcher owning its primary store."""
    out = []
    for c in index.chunks:
        data, info = fetchers[c.location].fetch_chunk(c)
        out.append((bytes(data), info))
    return out


class TestFailover:
    def test_dead_primary_fails_over_to_replica(self):
        cloud = FaultInjectingStore(
            MemoryStore("cloud"), FaultSpec(permanent_keys=("part",)),
            armed=False,
        )
        stores = {"local": MemoryStore("local"), "cloud": cloud}
        units, index = make_dataset(stores)
        cloud.arm()
        fetchers = make_fetchers(stores)
        try:
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        got = b"".join(d for d, _ in results)
        assert got == units.tobytes()
        cloud_chunks = [c for c in index.chunks if c.location == "cloud"]
        assert cloud_chunks  # placement actually split the data
        failovers = sum(i.n_failovers for _, i in results)
        assert failovers == len(cloud_chunks)

    def test_failover_exhausted_raises_last_error(self):
        spec = FaultSpec(permanent_keys=("part",))
        stores = {
            "local": FaultInjectingStore(MemoryStore("local"), spec, armed=False),
            "cloud": FaultInjectingStore(MemoryStore("cloud"), spec, armed=False),
        }
        units, index = make_dataset(stores)
        for s in stores.values():
            s.arm()
        fetchers = make_fetchers(stores)
        try:
            from repro.storage.faults import PermanentStorageError

            with pytest.raises(PermanentStorageError):
                fetchers[index.chunks[0].location].fetch_chunk(index.chunks[0])
        finally:
            for f in fetchers.values():
                f.close()

    def test_encoded_chunks_fail_over_too(self):
        cloud = FaultInjectingStore(
            MemoryStore("cloud"), FaultSpec(permanent_keys=("part",)),
            armed=False,
        )
        stores = {"local": MemoryStore("local"), "cloud": cloud}
        units, index = make_dataset(stores, codec="zlib")
        cloud.arm()
        fetchers = make_fetchers(stores)
        try:
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        assert b"".join(d for d, _ in results) == units.tobytes()
        assert sum(i.n_failovers for _, i in results) > 0


class TestBreakerRouting:
    def test_open_breaker_skips_dead_store(self):
        cloud = FaultInjectingStore(
            MemoryStore("cloud"), FaultSpec(permanent_keys=("part",)),
            armed=False,
        )
        stores = {"local": MemoryStore("local"), "cloud": cloud}
        units, index = make_dataset(stores)
        cloud.arm()
        health = HealthRegistry(BreakerPolicy(fail_threshold=2, recovery_s=60.0))
        fetchers = make_fetchers(stores, health=health)
        try:
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        assert b"".join(d for d, _ in results) == units.tobytes()
        snap = health.snapshot()["cloud"]
        assert snap["state"] == "open"
        assert snap["n_opened"] == 1
        # Once open, replica ordering puts the healthy store first: the
        # dead store stops being attempted, so its failure count is far
        # below the number of cloud-primary chunks fetched.
        cloud_chunks = sum(1 for c in index.chunks if c.location == "cloud")
        assert cloud_chunks > 2
        assert snap["n_failures"] == 2  # exactly the opening streak

    def test_registry_only_created_when_configured(self):
        from repro.runtime.core import EngineOptions, EngineBase

        class Probe(EngineBase):
            def run(self, spec, index):  # pragma: no cover
                raise NotImplementedError

        stores = {"local": MemoryStore("local")}
        clusters = [ClusterConfig("local", "local", 1, 1)]
        assert Probe(clusters, stores).make_health() is None
        assert Probe(
            clusters, stores, options=EngineOptions(breaker=BreakerPolicy())
        ).make_health() is not None
        assert Probe(
            clusters, stores, options=EngineOptions(hedge=HedgePolicy())
        ).make_health() is not None


class TestHedging:
    def stalled_stores(self, stall_s=0.05):
        # Every cloud read stalls (p=1.0) for a seeded duration in
        # [stall_s/2, stall_s]; the local replica answers instantly.
        cloud = FaultInjectingStore(
            MemoryStore("cloud"),
            FaultSpec(stall_p=1.0, stall_s=stall_s, seed=3),
            armed=False,
        )
        return {"local": MemoryStore("local"), "cloud": cloud}

    def test_stalled_primary_is_hedged_and_loses(self):
        stores = self.stalled_stores()
        units, index = make_dataset(stores)
        stores["cloud"].arm()
        hedge = HedgePolicy(multiplier=3.0, min_threshold_s=0.005, max_hedges=1)
        health = HealthRegistry()
        fetchers = make_fetchers(stores, health=health, hedge=hedge)
        try:
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        assert b"".join(d for d, _ in results) == units.tobytes()
        hedges = sum(i.n_hedges for _, i in results)
        wins = sum(i.hedge_wins for _, i in results)
        assert hedges > 0
        assert wins > 0
        assert wins <= hedges

    def test_hedge_improves_p95_on_same_seed(self):
        def run(hedge):
            stores = self.stalled_stores()
            units, index = make_dataset(stores)
            stores["cloud"].arm()
            fetchers = make_fetchers(
                stores, health=HealthRegistry() if hedge else None, hedge=hedge
            )
            try:
                fetch_everything(index, fetchers)
                lat = sorted(
                    t for f in fetchers.values() for t in f.fetch_latencies
                )
            finally:
                for f in fetchers.values():
                    f.close()
            return lat[int(0.95 * (len(lat) - 1))]

        p95_plain = run(None)
        p95_hedged = run(
            HedgePolicy(multiplier=3.0, min_threshold_s=0.005, max_hedges=1)
        )
        # Unhedged cloud fetches eat the full seeded stall (>= 25ms);
        # hedged ones are bounded near the 5ms threshold plus a fast
        # local read.
        assert p95_hedged < p95_plain

    def test_hedged_fetch_with_all_sources_dead_raises(self):
        spec = FaultSpec(permanent_keys=("part",))
        stores = {
            "local": FaultInjectingStore(MemoryStore("local"), spec, armed=False),
            "cloud": FaultInjectingStore(MemoryStore("cloud"), spec, armed=False),
        }
        units, index = make_dataset(stores)
        for s in stores.values():
            s.arm()
        fetchers = make_fetchers(
            stores, health=HealthRegistry(), hedge=HedgePolicy()
        )
        try:
            from repro.storage.faults import PermanentStorageError

            with pytest.raises(PermanentStorageError):
                fetchers[index.chunks[0].location].fetch_chunk(index.chunks[0])
        finally:
            for f in fetchers.values():
                f.close()


class TestSingleSourceUnchanged:
    def test_plain_fetch_records_health(self):
        store = MemoryStore("local")
        store.put("k", b"z" * 64)
        health = HealthRegistry()
        chunk = ChunkInfo(
            chunk_id=0, file_id=0, key="k", location="local",
            offset=0, nbytes=64, n_units=64,
        )
        with ParallelFetcher(store, n_threads=1, health=health) as f:
            data, info = f.fetch_chunk(chunk)
        assert bytes(data) == b"z" * 64
        assert info.n_failovers == 0
        assert health.health("local").n_successes == 1
