"""Erasure-coded striping: placement, fastest-k-of-n retrieval, recovery.

Chaos is the seeded fault injector throughout; breaker cooldowns use an
injectable fake clock, so no test sleeps on the wall clock.
"""


import numpy as np
import pytest

from repro.data.chunks import ChunkFragment
from repro.data.dataset import (
    distribute_dataset,
    ordered_placements,
    read_all_units,
    stripe_dataset,
    write_dataset,
)
from repro.data.formats import RecordFormat
from repro.data.index import DataIndex
from repro.runtime.core import ClusterConfig, EngineOptions, make_cluster_fetchers
from repro.storage.erasure import ErasureError
from repro.storage.faults import FaultInjectingStore, FaultSpec
from repro.storage.health import BreakerPolicy, HealthRegistry
from repro.storage.local import MemoryStore
from repro.storage.retry import RetryPolicy

FMT = RecordFormat("bytes", np.uint8, ())
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def make_stores(n_spares=4, dead=(), stall=()):
    stores = {}
    for name in ["local", "cloud"] + [f"spare{i}" for i in range(n_spares)]:
        store = MemoryStore(name)
        if name in dead:
            store = FaultInjectingStore(
                store, FaultSpec(permanent_keys=("part",)), armed=False
            )
        elif name in stall:
            store = FaultInjectingStore(
                store, FaultSpec(stall_p=1.0, stall_s=0.05, seed=3), armed=False
            )
        stores[name] = store
    return stores


def make_striped(stores, *, n=240, k=4, m=2, codec=None):
    units = np.arange(n, dtype=np.uint8).reshape(n, *FMT.record_shape)
    index = write_dataset(
        units, FMT, stores["local"], n_files=3, chunk_units=20, codec=codec
    )
    index = distribute_dataset(
        index, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
    )
    index = stripe_dataset(index, stores, k=k, m=m)
    for s in stores.values():
        arm = getattr(s, "arm", None)
        if callable(arm):
            arm()
    return units, index


def make_fetchers(stores, *, health=None, hedge=None):
    cluster = ClusterConfig("local", "local", n_workers=1, retrieval_threads=2)
    return make_cluster_fetchers(
        stores, cluster, retry=FAST_RETRY, health=health, hedge=hedge
    )


def fetch_everything(index, fetchers):
    out = []
    for c in index.chunks:
        data, info = fetchers[c.location].fetch_chunk(c)
        out.append((bytes(data), info))
    return out


class TestStripeDataset:
    def test_fragments_attached_originals_deleted(self):
        stores = make_stores()
        units, index = make_striped(stores)
        assert index.meta["stripe"] == [4, 2]
        for c in index.chunks:
            assert c.stripe == (4, 2)
            assert len(c.fragments) == 6
            assert [f.frag_index for f in c.fragments] == list(range(6))
            # Round-robin placement never doubles up while stores last.
            locs = [f.location for f in c.fragments]
            assert len(set(locs)) == 6
        # The original file objects are gone: only fragments remain.
        for name, store in stores.items():
            assert all(".f" in key for key in store.list_keys())

    def test_read_round_trip_plain_and_encoded(self):
        for codec in (None, "zlib"):
            stores = make_stores()
            units, index = make_striped(stores, codec=codec)
            np.testing.assert_array_equal(read_all_units(index, stores), units)

    def test_storage_overhead_is_n_over_k(self):
        stores = make_stores()
        plain = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        units = np.arange(240, dtype=np.uint8)
        base = write_dataset(units, FMT, plain["local"], n_files=3, chunk_units=20)
        base_bytes = sum(plain["local"].size(k) for k in plain["local"].list_keys())
        _, index = make_striped(stores, k=4, m=2)
        striped_bytes = sum(
            s.size(key) for s in stores.values() for key in s.list_keys()
        )
        ratio = striped_bytes / base_bytes
        assert 1.5 <= ratio < 1.52  # (k+m)/k plus padding

    def test_index_json_round_trip(self):
        stores = make_stores()
        _, index = make_striped(stores)
        rt = DataIndex.from_json(index.to_json())
        for a, b in zip(rt.chunks, index.chunks):
            assert a.fragments == b.fragments
            assert a.stripe == b.stripe

    def test_old_index_without_stripe_still_loads(self):
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        units = np.arange(60, dtype=np.uint8)
        index = write_dataset(units, FMT, stores["local"], n_files=2,
                              chunk_units=10)
        text = index.to_json()
        assert '"fragments"' not in text and '"stripe"' not in text
        rt = DataIndex.from_json(text)
        assert all(c.fragments == () and c.stripe is None for c in rt.chunks)

    def test_invalid_geometry_rejected(self):
        stores = make_stores()
        units = np.arange(60, dtype=np.uint8)
        index = write_dataset(units, FMT, stores["local"], n_files=2,
                              chunk_units=10)
        with pytest.raises(ValueError):
            stripe_dataset(index, stores, k=0, m=2)
        with pytest.raises(ValueError):
            stripe_dataset(index, stores, k=1, m=0)

    def test_fragment_round_trip(self):
        f = ChunkFragment(frag_index=3, location="spare1", key="a.f03", nbytes=9)
        assert ChunkFragment.from_dict(f.to_dict()) == f


class TestOrderedPlacements:
    def test_rotation_spreads_start_store(self):
        stores = {n: MemoryStore(n) for n in ("a", "b", "c", "d")}
        p0 = ordered_placements(stores, "a", 3, rotation=0, include_home=True,
                                distinct=False)
        p1 = ordered_placements(stores, "a", 3, rotation=1, include_home=True,
                                distinct=False)
        assert p0 != p1
        assert len(p0) == len(p1) == 3

    def test_distinct_needs_enough_stores(self):
        stores = {n: MemoryStore(n) for n in ("a", "b")}
        with pytest.raises(ValueError, match="replicas need"):
            ordered_placements(stores, "a", 2, what="replica")

    def test_unknown_home_rejected(self):
        stores = {"a": MemoryStore("a")}
        with pytest.raises(KeyError):
            ordered_placements(stores, "nope", 1)


class TestStripedFetch:
    def test_bit_identical_and_counters(self):
        stores = make_stores()
        units, index = make_striped(stores)
        fetchers = make_fetchers(stores)
        try:
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        assert b"".join(d for d, _ in results) == units.tobytes()
        for _, info in results:
            assert info.n_fragments == 4
            assert info.n_parity_decodes == 0  # all data legs healthy
            assert info.n_copies == 1  # exactly the reassembly copy
        wasted = sum(f.fragments_wasted_bytes for f in fetchers.values())
        assert wasted == 0

    def test_encoded_chunks_count_decode_copy(self):
        stores = make_stores()
        units, index = make_striped(stores, codec="zlib")
        fetchers = make_fetchers(stores)
        try:
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        assert b"".join(d for d, _ in results) == units.tobytes()
        assert all(i.n_copies == 2 for _, i in results)

    def test_m_dead_stores_masked_by_parity(self):
        stores = make_stores(dead=("spare0", "spare1"))
        units, index = make_striped(stores)
        fetchers = make_fetchers(stores)
        try:
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        assert b"".join(d for d, _ in results) == units.tobytes()
        assert sum(i.n_parity_decodes for _, i in results) > 0
        assert sum(i.n_failovers for _, i in results) > 0

    def test_more_than_m_dead_stores_fails(self):
        stores = make_stores(dead=("spare0", "spare1", "spare2"))
        units, index = make_striped(stores)
        fetchers = make_fetchers(stores)
        try:
            from repro.storage.faults import PermanentStorageError

            with pytest.raises((PermanentStorageError, ErasureError)):
                for c in index.chunks:
                    fetchers[c.location].fetch_chunk(c)
        finally:
            for f in fetchers.values():
                f.close()

    def test_chunk_with_too_few_fragments_rejected(self):
        stores = make_stores()
        _, index = make_striped(stores, k=4, m=2)
        c = index.chunks[0]
        from dataclasses import replace

        broken = replace(c, fragments=c.fragments[:3])
        fetchers = make_fetchers(stores)
        try:
            with pytest.raises(ErasureError, match="fragments"):
                fetchers[c.location].fetch_chunk(broken)
        finally:
            for f in fetchers.values():
                f.close()


class TestBreakerStripedRouting:
    def test_open_breaker_demoted_while_k_healthy(self):
        stores = make_stores(dead=("spare0",))
        units, index = make_striped(stores)
        health = HealthRegistry(BreakerPolicy(fail_threshold=2, recovery_s=60.0))
        fetchers = make_fetchers(stores, health=health)
        try:
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        assert b"".join(d for d, _ in results) == units.tobytes()
        snap = health.snapshot()["spare0"]
        assert snap["state"] == "open"
        # Once open, the dead store's fragments are demoted: skips accrue
        # and the dead store stops being attempted on every chunk.
        skips = sum(f.n_breaker_skips for f in fetchers.values())
        assert skips > 0

    def test_half_open_probe_recovers_store(self):
        clock = FakeClock()
        stores = make_stores(dead=("spare0",))
        units, index = make_striped(stores)
        health = HealthRegistry(
            BreakerPolicy(fail_threshold=2, recovery_s=1.0, close_after=1),
            clock=clock,
        )
        fetchers = make_fetchers(stores, health=health)
        try:
            fetch_everything(index, fetchers)
            assert health.snapshot()["spare0"]["state"] == "open"
            # The store heals; after the cooldown the breaker half-opens
            # and the next striped fetch's probe closes it again.
            stores["spare0"].disarm()
            clock.advance(1.5)
            results = fetch_everything(index, fetchers)
        finally:
            for f in fetchers.values():
                f.close()
        assert b"".join(d for d, _ in results) == units.tobytes()
        snap = health.snapshot()["spare0"]
        assert snap["state"] == "closed"
        assert snap["n_half_opened"] >= 1
        assert snap["n_closed"] >= 1
        # With every store healthy again, no parity decode is needed.
        assert sum(i.n_parity_decodes for _, i in results) == 0


class TestEngineOptionsStripe:
    def test_valid_stripe_normalized(self):
        opts = EngineOptions(stripe=(4, 2))
        assert opts.stripe == (4, 2)

    @pytest.mark.parametrize("bad", [(0, 2), (1, 0), (-1, 1), (4,), (300, 2)])
    def test_invalid_stripe_rejected(self, bad):
        with pytest.raises(ValueError):
            EngineOptions(stripe=bad)
