"""Integration with real on-disk storage.

Everything else runs on MemoryStore for speed; this suite exercises the
identical paths against LocalDiskStore (real files, ranged seeks,
persistence) and a disk-backed SimulatedS3Store, including integrity
verification against on-disk corruption.
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.apps.knn import KnnSpec, knn_exact
from repro.data.dataset import distribute_dataset, read_all_units, write_dataset
from repro.data.formats import points_format
from repro.data.generator import generate_points
from repro.data.index import DataIndex
from repro.data.integrity import IntegrityError, attach_checksums
from repro.runtime.engine import ClusterConfig, ThreadedEngine
from repro.storage.local import LocalDiskStore
from repro.storage.s3 import S3Profile, SimulatedS3Store


@pytest.fixture
def disk_stores(tmp_path):
    return {
        "local": LocalDiskStore(str(tmp_path / "cluster"), location="local"),
        "cloud": SimulatedS3Store(
            inner=LocalDiskStore(str(tmp_path / "s3"), location="cloud"),
            profile=S3Profile.unthrottled(),
        ),
    }


@pytest.fixture
def dataset(disk_stores):
    points = generate_points(3000, 4, seed=121)
    idx = write_dataset(points, points_format(4), disk_stores["local"],
                        n_files=6, chunk_units=250)
    idx = distribute_dataset(idx, disk_stores, {"local": 0.5, "cloud": 0.5},
                             disk_stores["local"])
    return points, idx


class TestDiskRoundtrip:
    def test_distributed_read_back(self, disk_stores, dataset):
        points, idx = dataset
        assert np.array_equal(read_all_units(idx, disk_stores), points)

    def test_index_persists_and_reloads(self, disk_stores, dataset, tmp_path):
        points, idx = dataset
        path = str(tmp_path / "index.json")
        idx.save(path)
        reloaded = DataIndex.load(path)
        assert np.array_equal(read_all_units(reloaded, disk_stores), points)

    def test_data_survives_store_reopen(self, dataset, tmp_path):
        points, idx = dataset
        fresh = {
            "local": LocalDiskStore(str(tmp_path / "cluster"), location="local"),
            "cloud": SimulatedS3Store(
                inner=LocalDiskStore(str(tmp_path / "s3"), location="cloud")
            ),
        }
        assert np.array_equal(read_all_units(idx, fresh), points)


class TestDiskEngineRuns:
    def test_knn_on_disk(self, disk_stores, dataset):
        points, idx = dataset
        engine = ThreadedEngine(
            [ClusterConfig("local", "local", 2), ClusterConfig("cloud", "cloud", 2)],
            disk_stores,
        )
        q = np.full(4, 0.5)
        rr = engine.run(KnnSpec(q, 6), idx)
        ref = knn_exact(points, q, 6)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])

    def test_kmeans_on_disk_with_verification(self, disk_stores, dataset):
        points, idx = dataset
        idx = attach_checksums(idx, disk_stores)
        cents = generate_points(3, 4, seed=122)
        engine = ThreadedEngine(
            [ClusterConfig("local", "local", 2), ClusterConfig("cloud", "cloud", 2)],
            disk_stores, verify_chunks=True,
        )
        rr = engine.run(KMeansSpec(cents), idx)
        np.testing.assert_allclose(rr.result.centroids, lloyd_step(points, cents).centroids)

    def test_on_disk_corruption_caught(self, disk_stores, dataset, tmp_path):
        points, idx = dataset
        idx = attach_checksums(idx, disk_stores)
        # Flip a byte in a cloud-resident file on disk, bypassing the API.
        cloud_file = next(f for f in idx.files if f.location == "cloud")
        path = tmp_path / "s3" / cloud_file.key
        raw = bytearray(path.read_bytes())
        raw[100] ^= 0xFF
        path.write_bytes(bytes(raw))
        engine = ThreadedEngine(
            [ClusterConfig("local", "local", 2), ClusterConfig("cloud", "cloud", 2)],
            disk_stores, verify_chunks=True,
        )
        with pytest.raises(IntegrityError):
            engine.run(KnnSpec(np.zeros(4), 3), idx)
