"""Cross-engine agreement: generalized reduction vs MapReduce baseline.

Both programming models run over identical datasets and must produce
identical answers -- the paper's Figure 1 equivalence.
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansMapReduceSpec, KMeansSpec
from repro.apps.knn import KnnMapReduceSpec, KnnSpec
from repro.apps.pagerank import PageRankMapReduceSpec, PageRankSpec, out_degrees
from repro.apps.wordcount import WordCountMapReduceSpec, WordCountSpec
from repro.data.dataset import write_dataset
from repro.data.formats import edges_format, points_format, tokens_format
from repro.data.generator import generate_edges, generate_points, generate_tokens
from repro.mapreduce.engine import MapReduceEngine
from repro.runtime.engine import ClusterConfig, ThreadedEngine
from repro.storage.local import MemoryStore


def run_both(gr_spec, mr_spec, units, fmt):
    store = MemoryStore("local")
    idx = write_dataset(units, fmt, store, n_files=3, chunk_units=max(1, len(units) // 9))
    stores = {"local": store}
    gr = ThreadedEngine([ClusterConfig("local", "local", 2)], stores).run(gr_spec, idx)
    mr = MapReduceEngine(stores, n_mappers=2, n_reducers=2).run(mr_spec, idx)
    return gr.result, mr.result


class TestAgreement:
    def test_wordcount(self):
        toks = generate_tokens(10000, 128, seed=51)
        gr, mr = run_both(
            WordCountSpec(), WordCountMapReduceSpec(), toks, tokens_format()
        )
        assert gr == mr

    def test_kmeans(self):
        pts = generate_points(2500, 5, seed=52)
        cents = generate_points(4, 5, seed=53)
        gr, mr = run_both(
            KMeansSpec(cents), KMeansMapReduceSpec(cents), pts, points_format(5)
        )
        np.testing.assert_allclose(gr.centroids, mr.centroids)
        np.testing.assert_array_equal(gr.counts, mr.counts)
        assert gr.sse == pytest.approx(mr.sse)

    def test_knn(self):
        pts = generate_points(2500, 5, seed=54)
        q = np.full(5, 0.6)
        gr, mr = run_both(KnnSpec(q, 7), KnnMapReduceSpec(q, 7), pts, points_format(5))
        np.testing.assert_allclose([x[0] for x in gr], [x[0] for x in mr])

    def test_pagerank(self):
        edges = generate_edges(400, 6000, seed=55)
        outdeg = out_degrees(edges, 400)
        ranks = np.full(400, 1 / 400)
        gr, mr = run_both(
            PageRankSpec(ranks, outdeg),
            PageRankMapReduceSpec(ranks, outdeg),
            edges,
            edges_format(),
        )
        np.testing.assert_allclose(gr, mr)


class TestGeneralizedReductionAdvantage:
    """Quantifies Section III-A: generalized reduction never materializes
    per-element (key, value) pairs, while even combine-enabled MapReduce
    buffers them."""

    def test_no_intermediate_pairs_in_gr(self):
        toks = generate_tokens(10000, 128, seed=56)
        store = MemoryStore("local")
        idx = write_dataset(toks, tokens_format(), store, n_files=2, chunk_units=1000)
        stores = {"local": store}
        mr = MapReduceEngine(stores, n_mappers=2, n_reducers=2).run(
            WordCountMapReduceSpec(True), idx
        )
        gr = ThreadedEngine([ClusterConfig("local", "local", 1)], stores).run(
            WordCountSpec(), idx
        )
        # MR buffers thousands of pairs; the GR robj holds only one
        # entry per distinct key (vocab is 128).
        assert mr.stats.peak_buffer_pairs > 1000
        assert gr.robj.nbytes <= 128 * 16
