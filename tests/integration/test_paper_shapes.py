"""The paper's qualitative findings, asserted against the simulator.

These are the reproduction's acceptance tests: each test pins one claim
from Section IV (evaluated at the paper's scale -- 12 GB, 32 files, 960
jobs, the paper's core counts) and asserts the simulator reproduces it.
Exact seconds are not compared (our substrate is a model, not the 2011
testbed); directions, orderings, and rough magnitudes are.
"""

import pytest

from repro.bursting.driver import run_paper_sweep, run_scalability_sweep
from repro.bursting.report import average_slowdown_pct, fig4_rows, table2_rows


@pytest.fixture(scope="module")
def sweeps():
    return {app: run_paper_sweep(app) for app in ("knn", "kmeans", "pagerank")}


@pytest.fixture(scope="module")
def scal():
    return {app: run_scalability_sweep(app) for app in ("knn", "kmeans", "pagerank")}


class TestFigure3:
    def test_average_slowdown_near_paper(self, sweeps):
        """Paper: average hybrid slowdown over centralized is 15.55%."""
        avg = average_slowdown_pct(sweeps)
        assert 8.0 < avg < 25.0

    def test_env_cloud_retrieval_beats_env_local_for_knn(self, sweeps):
        """Paper: 'env-cloud configuration has shorter retrieval time
        than env-local' (multi-threaded S3 retrieval)."""
        res = sweeps["knn"]
        cloud_ret = res["env-cloud"].stats.clusters["cloud"].retrieval_s
        local_ret = res["env-local"].stats.clusters["local"].retrieval_s
        assert cloud_ret < local_ret

    def test_knn_retrieval_dominates(self, sweeps):
        """Paper: knn is data-intensive; retrieval dominates processing."""
        c = sweeps["knn"]["env-local"].stats.clusters["local"]
        assert c.retrieval_s > 3 * c.processing_s

    def test_kmeans_processing_dominates(self, sweeps):
        """Paper: kmeans 'is dominated by computation'."""
        c = sweeps["kmeans"]["env-local"].stats.clusters["local"]
        assert c.processing_s > 3 * c.retrieval_s

    def test_pagerank_balanced(self, sweeps):
        """Paper: pagerank 'is quite balanced between computation and
        data retrieval'."""
        c = sweeps["pagerank"]["env-local"].stats.clusters["local"]
        ratio = c.processing_s / c.retrieval_s
        assert 0.4 < ratio < 2.5

    def test_retrieval_grows_with_s3_share(self, sweeps):
        """Paper: 'data retrieval times are increasing across the
        varying data proportions' -- for every application."""
        for app in ("knn", "kmeans", "pagerank"):
            res = sweeps[app]
            rets = [
                res[env].stats.clusters["local"].retrieval_s
                for env in ("env-50/50", "env-33/67", "env-17/83")
            ]
            assert rets[0] < rets[1] < rets[2]

    def test_slowdown_grows_with_skew(self, sweeps):
        for app in ("knn", "pagerank"):
            rows = table2_rows(sweeps[app])
            pcts = [r["slowdown_pct"] for r in rows]
            assert pcts[0] < pcts[1] < pcts[2]

    def test_kmeans_slowdowns_tiny(self, sweeps):
        """Paper: kmeans worst-case slowdown is 1.4% -- compute-intensive
        apps exploit bursting with very little penalty."""
        rows = table2_rows(sweeps["kmeans"])
        assert all(abs(r["slowdown_pct"]) < 5.0 for r in rows)

    def test_knn_worst_case_large(self, sweeps):
        """Paper: knn env-17/83 slows down by 45.9%."""
        rows = {r["env"]: r for r in table2_rows(sweeps["knn"])}
        assert rows["env-17/83"]["slowdown_pct"] > 25.0


class TestTable1:
    def test_stolen_jobs_grow_with_skew(self, sweeps):
        for app in ("knn", "kmeans", "pagerank"):
            res = sweeps[app]
            stolen = [
                res[env].stats.clusters["local"].jobs_stolen
                for env in ("env-50/50", "env-33/67", "env-17/83")
            ]
            assert stolen[0] < stolen[1] < stolen[2]

    def test_all_jobs_processed_every_env(self, sweeps):
        for app, res in sweeps.items():
            for env, r in res.items():
                assert r.stats.jobs_processed == 960, (app, env)

    def test_load_balanced_despite_skew(self, sweeps):
        """Pooling balances work: at 17/83 both clusters still process
        comparable job counts (the cluster steals from S3)."""
        res = sweeps["knn"]["env-17/83"].stats
        local = res.clusters["local"].jobs_processed
        cloud = res.clusters["cloud"].jobs_processed
        assert 0.4 < local / cloud < 2.5


class TestTable2:
    def test_pagerank_global_reduction_dominant_overhead(self, sweeps):
        """Paper: pagerank's large robj makes inter-cluster reduction a
        significant overhead; knn/kmeans global reduction is tiny."""
        pr = table2_rows(sweeps["pagerank"])[0]["global_reduction_s"]
        knn = table2_rows(sweeps["knn"])[0]["global_reduction_s"]
        km = table2_rows(sweeps["kmeans"])[0]["global_reduction_s"]
        assert pr > 10 * knn
        assert pr > 10 * km


class TestFigure4:
    def test_scaling_efficiencies_in_paper_band(self, scal):
        """Paper: the system scales at ~81% on average per doubling."""
        effs = []
        for app in ("knn", "kmeans", "pagerank"):
            effs.extend(
                r["efficiency_pct"] for r in fig4_rows(scal[app]) if r["efficiency_pct"]
            )
        avg = sum(effs) / len(effs)
        assert 70.0 < avg < 95.0
        assert all(e > 55.0 for e in effs)

    def test_kmeans_scales_best(self, scal):
        """Paper: compute-intensive apps dominate their overheads and
        scale best; data-intensive apps are less scalable."""
        def last_eff(app):
            return fig4_rows(scal[app])[-1]["efficiency_pct"]

        assert last_eff("kmeans") > last_eff("knn")
        assert last_eff("kmeans") > last_eff("pagerank")

    def test_pagerank_sync_grows_with_cores(self, scal):
        """Paper: pagerank sync overhead rises from 3.3% to 13.3% as the
        fixed robj exchange stops amortizing."""
        rows = fig4_rows(scal["pagerank"])
        sync = [r["sync_pct"] for r in rows]
        assert sync[-1] > 2 * sync[0]
        assert sync[-1] > 8.0

    def test_knn_sync_small(self, scal):
        """Paper: knn sync overheads are small at low core counts."""
        rows = fig4_rows(scal["knn"])
        assert rows[0]["sync_pct"] < 5.0

    def test_total_time_decreases_with_cores(self, scal):
        for app in ("knn", "kmeans", "pagerank"):
            totals = [r["total_s"] for r in fig4_rows(scal[app])]
            assert totals == sorted(totals, reverse=True)
