"""End-to-end integration: full middleware vs single-machine references.

Every test writes a real dataset, distributes it across a local store
and a simulated S3 store, runs the complete threaded middleware (head
scheduler, masters, multi-threaded retrieval, work stealing, global
reduction), and checks the answer against an independent computation.
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.apps.knn import KnnSpec, knn_exact
from repro.apps.pagerank import PageRankSpec, out_degrees, pagerank_step
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.bursting.driver import run_threaded_bursting
from repro.data.generator import generate_edges, generate_points, generate_tokens
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store


@pytest.fixture
def stores():
    return {
        "local": MemoryStore("local"),
        # Real SimulatedS3Store (unthrottled) in the cloud role.
        "cloud": SimulatedS3Store(profile=S3Profile.unthrottled()),
    }


@pytest.mark.parametrize("local_fraction", [1.0, 0.5, 1 / 3, 1 / 6, 0.0])
class TestKnnAcrossPlacements:
    def test_knn(self, stores, local_fraction):
        pts = generate_points(4000, 6, seed=41)
        q = np.full(6, 0.5)
        rr = run_threaded_bursting(
            KnnSpec(q, 10), pts, stores, local_fraction=local_fraction,
            local_workers=2, cloud_workers=2, n_files=8,
        )
        ref = knn_exact(pts, q, 10)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])


class TestKMeansEndToEnd:
    def test_multi_iteration_convergence(self, stores):
        pts = generate_points(3000, 4, n_clusters=4, spread=0.05, seed=42)
        cents = generate_points(4, 4, seed=43)
        for _ in range(5):
            rr = run_threaded_bursting(
                KMeansSpec(cents), pts, stores, local_fraction=0.5,
                local_workers=2, cloud_workers=2,
            )
            cents = rr.result.centroids
        # Converged run matches the single-machine fixed point.
        single = generate_points(4, 4, seed=43)
        for _ in range(5):
            single = lloyd_step(pts, single).centroids
        np.testing.assert_allclose(cents, single)


class TestPageRankEndToEnd:
    def test_distributed_step_matches_reference(self, stores):
        edges = generate_edges(500, 8000, seed=44)
        outdeg = out_degrees(edges, 500)
        ranks = np.full(500, 1 / 500)
        rr = run_threaded_bursting(
            PageRankSpec(ranks, outdeg), edges, stores, local_fraction=1 / 3,
            local_workers=2, cloud_workers=2,
        )
        np.testing.assert_allclose(rr.result, pagerank_step(edges, ranks, outdeg))


class TestWordCountEndToEnd:
    def test_with_throttled_s3(self):
        """Full stack including S3 latency/bandwidth shaping."""
        stores = {
            "local": MemoryStore("local"),
            "cloud": SimulatedS3Store(
                profile=S3Profile(request_latency_s=0.001, per_connection_bw=50e6)
            ),
        }
        toks = generate_tokens(20000, 200, seed=45)
        rr = run_threaded_bursting(
            WordCountSpec(), toks, stores, local_fraction=0.5,
            local_workers=2, cloud_workers=2, retrieval_threads=4,
        )
        assert rr.result == wordcount_exact(toks)
        # Shaping means cloud retrieval registered measurable time.
        assert rr.stats.total_s > 0


class TestStatsConsistency:
    def test_job_accounting_balances(self, stores):
        pts = generate_points(3000, 4, seed=46)
        rr = run_threaded_bursting(
            KnnSpec(np.zeros(4), 5), pts, stores, local_fraction=0.5,
            local_workers=2, cloud_workers=2, n_files=6,
        )
        total_jobs = sum(c.jobs_processed for c in rr.stats.clusters.values())
        assert total_jobs == rr.stats.jobs_processed
        stolen = rr.stats.jobs_stolen
        assert 0 <= stolen <= total_jobs

    def test_sync_nonnegative_everywhere(self, stores):
        pts = generate_points(2000, 4, seed=47)
        rr = run_threaded_bursting(
            KnnSpec(np.zeros(4), 5), pts, stores, local_fraction=0.5,
        )
        for c in rr.stats.clusters.values():
            assert c.sync_s >= 0
            assert c.idle_s >= 0
