"""Smoke test for the ``python -m repro`` entry point."""

import subprocess
import sys


def test_module_entry_point_runs():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "simulate", "--app", "knn",
         "--local-cores", "4", "--cloud-cores", "4"],
        capture_output=True, text=True, timeout=180,
    )
    assert out.returncode == 0, out.stderr
    assert "total:" in out.stdout


def test_module_entry_point_help():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, timeout=60,
    )
    assert out.returncode == 0
    for cmd in ("sweep", "scalability", "simulate", "provision", "place",
                "trace", "evaluate", "demo"):
        assert cmd in out.stdout
