"""BurstingService lifecycle: submit, admission, cancel, shutdown.

The multi-tenant service refactor's contract, beyond result
correctness (covered by test_concurrent_equivalence): handles walk the
QUEUED -> RUNNING -> terminal state machine, per-tenant admission and
weighted fair-share behave as configured, cancellation works both
before and during execution, and shutdown leaves no live fleet
threads and no leaked shared-memory segments.
"""

import os
import threading

import pytest

from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_tokens
from repro.runtime import ClusterConfig
from repro.runtime.jobs import jobs_from_index
from repro.runtime.scheduler import HeadScheduler
from repro.service import (
    BurstingService,
    JobCancelledError,
    JobState,
    MultiJobScheduler,
    TenantConfig,
)
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store

CLUSTERS = [
    ClusterConfig("local", "local", 2, 2),
    ClusterConfig("cloud", "cloud", 2, 2),
]


def build_env(n_tokens=9000, local_fraction=0.5, cloud_store=None):
    stores = {
        "local": MemoryStore("local"),
        "cloud": cloud_store or SimulatedS3Store(profile=S3Profile.unthrottled()),
    }
    toks = generate_tokens(n_tokens, 200, seed=41)
    spec = WordCountSpec()
    index = write_dataset(
        toks, spec.fmt, stores["local"], n_files=4,
        chunk_units=max(1, n_tokens // 12),
    )
    fractions = {}
    if local_fraction > 0:
        fractions["local"] = local_fraction
    if local_fraction < 1:
        fractions["cloud"] = 1.0 - local_fraction
    index = distribute_dataset(index, stores, fractions, stores["local"])
    return stores, index, spec, wordcount_exact(toks)


def svc_threads():
    return [t for t in threading.enumerate() if t.name.startswith("svc-")]


class GateStore:
    """Wrapper that blocks every GET until the test opens the gate."""

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()
        self.fetch_started = threading.Event()

    def get(self, *args, **kwargs):
        self.fetch_started.set()
        assert self.gate.wait(10), "test gate never opened"
        return self.inner.get(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestLifecycle:
    def test_submit_runs_to_done(self):
        stores, index, spec, ref = build_env()
        service = BurstingService(CLUSTERS, stores, batch_size=2)
        try:
            handle = service.submit(spec, index, tenant="analytics")
            rr = handle.result(timeout=30)
        finally:
            service.shutdown()
        assert handle.status() is JobState.DONE
        assert handle.done()
        assert rr.result == ref
        assert rr.stats.jobs_processed == len(index.chunks)
        assert handle.progress() == {
            "jobs_total": len(index.chunks), "jobs_done": len(index.chunks),
        }
        assert len(handle.chunk_done_times()) == len(index.chunks)

    def test_status_and_service_rows(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(CLUSTERS, stores, batch_size=2)
        try:
            h1 = service.submit(spec, index, tenant="a")
            h2 = service.submit(spec, index, tenant="b")
            h1.result(timeout=30)
            h2.result(timeout=30)
            rows = service.service_rows()
            status = service.status()
        finally:
            service.shutdown()
        assert [r["job"] for r in status] == [h1.run_id, h2.run_id]
        assert all(r["state"] == "done" for r in status)
        # Per-run rows plus the ALL rollup: chunk counts must sum.
        assert rows[-1]["job"] == "ALL"
        assert rows[-1]["chunks"] == sum(r["chunks"] for r in rows[:-1])
        assert rows[-1]["chunks_done"] == 2 * len(index.chunks)

    def test_async_result_retrieval(self):
        import asyncio

        stores, index, spec, ref = build_env()
        service = BurstingService(CLUSTERS, stores, batch_size=2)

        async def submit_and_await():
            h1 = service.submit(spec, index, tenant="a")
            h2 = service.submit(spec, index, tenant="b")
            r1, r2 = await asyncio.gather(h1.aresult(30), h2.aresult(30))
            return r1, r2

        try:
            r1, r2 = asyncio.run(submit_and_await())
        finally:
            service.shutdown()
        assert r1.result == ref and r2.result == ref

    def test_submit_after_shutdown_rejected(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(CLUSTERS, stores)
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(spec, index)

    def test_unknown_engine_rejected(self):
        stores, index, spec, _ = build_env()
        with pytest.raises(ValueError, match="unknown engine"):
            BurstingService(CLUSTERS, stores, engine="quantum")


class TestAdmission:
    def test_max_concurrent_runs_queues_fifo(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(CLUSTERS, stores, max_concurrent_runs=1)
        try:
            h1 = service.submit(spec, index)
            h2 = service.submit(spec, index)
            # Admission is immediate for the first, queued for the second.
            assert h1.status() in (JobState.RUNNING, JobState.DONE)
            h1.result(timeout=30)
            h2.result(timeout=30)
            assert h2.status() is JobState.DONE
        finally:
            service.shutdown()

    def test_tenant_max_inflight(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(
            CLUSTERS, stores,
            tenants={"capped": TenantConfig(max_inflight=1)},
        )
        try:
            handles = [
                service.submit(spec, index, tenant="capped") for _ in range(3)
            ]
            for h in handles:
                h.result(timeout=30)
        finally:
            service.shutdown()
        assert all(h.status() is JobState.DONE for h in handles)

    def test_unknown_tenant_auto_registered(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(CLUSTERS, stores)
        try:
            service.submit(spec, index, tenant="walk-in").result(timeout=30)
            report = service.tenant_report()
        finally:
            service.shutdown()
        assert report["walk-in"]["weight"] == 1.0
        assert report["walk-in"]["served_chunks"] == len(index.chunks)

    def test_bad_tenant_config_rejected(self):
        with pytest.raises(ValueError, match="weight must be positive"):
            TenantConfig(weight=0)
        with pytest.raises(ValueError, match="max_inflight"):
            TenantConfig(max_inflight=0)


class TestMultiJobScheduler:
    """Unit coverage of the weighted fair-share layer."""

    class _Entry:
        def __init__(self, run_id, tenant, seq, jobs):
            self.run_id = run_id
            self.tenant = tenant
            self.seq = seq
            self.scheduler = HeadScheduler(jobs)

    def _entry(self, run_id, tenant, seq, index):
        from dataclasses import replace

        jobs = [replace(j, run_id=run_id) for j in jobs_from_index(index)]
        return self._Entry(run_id, tenant, seq, jobs)

    def test_weighted_share_tracks_weights(self):
        _, index, _, _ = build_env(n_tokens=24000)
        multi = MultiJobScheduler({"heavy": 2.0, "light": 1.0})
        entries = {
            "r0": self._entry("r0", "heavy", 0, index),
            "r1": self._entry("r1", "light", 1, index),
        }
        for e in entries.values():
            multi.add_run(e)
        # Drain one assignment at a time; as long as both tenants hold
        # work, served chunks should track the 2:1 weights.
        while multi.has_work():
            jobs = multi.request_jobs("local", 1)
            if not jobs:
                break
            for j in jobs:
                # complete immediately so outstanding never blocks
                entries[j.run_id].scheduler.complete(j)
            if multi.served("light") and multi.served("heavy"):
                lead = multi.served("heavy") / multi.served("light")
                assert 0.5 <= lead <= 4.0
        # Equal totals submitted, so both drain completely in the end.
        assert multi.served("heavy") == multi.served("light")

    def test_deficit_prefers_underserved_tenant(self):
        _, index, _, _ = build_env()
        multi = MultiJobScheduler({"a": 1.0, "b": 1.0})
        ea = self._entry("ra", "a", 0, index)
        eb = self._entry("rb", "b", 1, index)
        multi.add_run(ea)
        multi.add_run(eb)
        first = multi.request_jobs("local", 2)
        assert all(j.run_id == "ra" for j in first)  # FIFO tie-break
        second = multi.request_jobs("local", 2)
        assert all(j.run_id == "rb" for j in second)  # deficit flipped

    def test_tenant_bias_published_to_assignment_key(self):
        _, index, _, _ = build_env()
        multi = MultiJobScheduler({"a": 1.0})
        entry = self._entry("ra", "a", 0, index)
        multi.add_run(entry)
        multi.request_jobs("local", 4)
        expected_bias = multi.deficit("a")  # published at next request
        multi.request_jobs("local", 1)
        sched = entry.scheduler
        assert sched.tenant_bias == pytest.approx(expected_bias)
        key = sched.assignment_key(index.chunks[0].file_id, set())
        assert key[1] == sched.tenant_bias


class TestHeadSchedulerServiceHooks:
    def test_drain_unassigned_empties_pool(self):
        _, index, _, _ = build_env()
        jobs = jobs_from_index(index)
        sched = HeadScheduler(jobs)
        taken = sched.request_jobs("local", 2)
        drained = sched.drain_unassigned()
        assert len(taken) + len(drained) == len(jobs)
        assert sched.remaining == 0
        assert not sched.all_done  # taken jobs still outstanding
        for j in taken:
            sched.complete(j)
        assert sched.all_done

    def test_assignment_key_orders_pick(self):
        _, index, _, _ = build_env()
        sched = HeadScheduler(jobs_from_index(index))
        fids = sorted({c.file_id for c in index.chunks})
        keys = [sched.assignment_key(f, set()) for f in fids]
        assert min(range(len(fids)), key=lambda i: keys[i]) == 0


class TestCancellation:
    def test_cancel_queued_job(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(CLUSTERS, stores, max_concurrent_runs=1)
        try:
            h1 = service.submit(spec, index)
            h2 = service.submit(spec, index)
            assert h2.status() is JobState.QUEUED
            assert h2.cancel()
            assert h2.status() is JobState.CANCELLED
            with pytest.raises(JobCancelledError):
                h2.result(timeout=5)
            h1.result(timeout=30)  # the running job is untouched
        finally:
            service.shutdown()

    def test_cancel_mid_run_and_service_survives(self):
        gate = GateStore(SimulatedS3Store(profile=S3Profile.unthrottled()))
        stores, index, spec, ref = build_env(
            local_fraction=0.0, cloud_store=gate
        )
        service = BurstingService(CLUSTERS, stores, batch_size=2)
        try:
            handle = service.submit(spec, index)
            assert gate.fetch_started.wait(10), "run never started fetching"
            assert handle.status() is JobState.RUNNING
            assert handle.cancel()
            assert handle.status() is JobState.CANCELLED
            gate.gate.set()  # let the in-flight chunks drain
            with pytest.raises(JobCancelledError):
                handle.result(timeout=30)
            # The fleet survives a cancelled job: the next submission
            # completes correctly on the same workers.
            after = service.submit(spec, index)
            assert after.result(timeout=30).result == ref
        finally:
            gate.gate.set()
            service.shutdown()

    def test_double_cancel_and_cancel_after_done(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(CLUSTERS, stores)
        try:
            handle = service.submit(spec, index)
            handle.result(timeout=30)
            assert not handle.cancel()  # already done
        finally:
            service.shutdown()


class TestShutdownHygiene:
    def test_shutdown_leaves_no_fleet_threads(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(CLUSTERS, stores)
        service.submit(spec, index).result(timeout=30)
        service.shutdown()
        assert svc_threads() == []

    def test_shutdown_is_idempotent_and_waits_for_inflight(self):
        stores, index, spec, ref = build_env()
        service = BurstingService(CLUSTERS, stores)
        handle = service.submit(spec, index)
        service.shutdown()
        service.shutdown()
        assert handle.status() is JobState.DONE
        assert handle.result().result == ref
        assert svc_threads() == []

    def test_shutdown_cancel_pending(self):
        stores, index, spec, _ = build_env()
        service = BurstingService(CLUSTERS, stores, max_concurrent_runs=1)
        h1 = service.submit(spec, index)
        h2 = service.submit(spec, index)
        service.shutdown(cancel_pending=True)
        assert h1.done() and h2.done()
        assert h2.status() is JobState.CANCELLED
        assert svc_threads() == []

    def test_context_manager_shuts_down(self):
        stores, index, spec, ref = build_env()
        with BurstingService(CLUSTERS, stores) as service:
            rr = service.submit(spec, index).result(timeout=30)
        assert rr.result == ref
        assert svc_threads() == []

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="no POSIX shm mount"
    )
    def test_process_backend_leaves_no_shm_segments(self):
        def shm_entries():
            return {
                n for n in os.listdir("/dev/shm") if n.startswith("psm_")
            }

        stores, index, spec, ref = build_env()
        before = shm_entries()
        service = BurstingService(CLUSTERS, stores, engine="process")
        try:
            h1 = service.submit(spec, index)
            h2 = service.submit(spec, index)
            assert h1.result(timeout=60).result == ref
            assert h2.result(timeout=60).result == ref
        finally:
            service.shutdown()
        assert shm_entries() - before == set()
