"""Concurrent-jobs equivalence: the service matches sequential runs.

The acceptance gate for the multi-tenant refactor: K jobs submitted
concurrently to one :class:`BurstingService` must produce the same
results as K one-shot engine runs executed sequentially -- on every
engine backend, for mixed applications, and under an injected worker
crash.  Wordcount (integer fold) must match bit-identically; kmeans
(float fold) matches to within accumulation-order tolerance, exactly
as the existing engine-equivalence matrix specifies.
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec
from repro.apps.wordcount import WordCountSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.generator import generate_points, generate_tokens
from repro.runtime import ClusterConfig, make_engine
from repro.service import BurstingService, JobState, TenantConfig
from repro.storage.local import MemoryStore
from repro.storage.s3 import S3Profile, SimulatedS3Store

ENGINES = ("threaded", "process", "actor")

CLUSTERS = [
    ClusterConfig("local", "local", 2, 2),
    ClusterConfig("cloud", "cloud", 2, 2),
]


def build_env():
    """One store map holding two datasets (wordcount + kmeans)."""
    stores = {
        "local": MemoryStore("local"),
        "cloud": SimulatedS3Store(profile=S3Profile.unthrottled()),
    }
    toks = generate_tokens(9000, 250, seed=71)
    wspec = WordCountSpec()
    windex = write_dataset(
        toks, wspec.fmt, stores["local"], n_files=4,
        chunk_units=max(1, len(toks) // 12), key_prefix="wc",
    )
    windex = distribute_dataset(
        windex, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
    )
    pts = generate_points(2400, 4, n_clusters=3, spread=0.08, seed=72)
    kspec = KMeansSpec(pts[:3].copy())
    kindex = write_dataset(
        pts, kspec.fmt, stores["local"], n_files=4,
        chunk_units=max(1, len(pts) // 12), key_prefix="km",
    )
    kindex = distribute_dataset(
        kindex, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
    )
    # K=4 mixed jobs across two tenants.
    workload = [
        ("wordcount", wspec, windex, "analytics"),
        ("kmeans", kspec, kindex, "ingest"),
        ("wordcount", wspec, windex, "ingest"),
        ("kmeans", kspec, kindex, "analytics"),
    ]
    ref_w = wordcount_exact(toks)
    return stores, workload, ref_w


def assert_job_matches(app, got, want, label):
    if app == "wordcount":
        assert got.result == want.result, f"{label}: wordcount diverged"
    else:
        np.testing.assert_allclose(
            got.result.centroids, want.result.centroids,
            err_msg=f"{label}: centroids diverged",
        )
        np.testing.assert_array_equal(
            got.result.counts, want.result.counts,
            err_msg=f"{label}: counts diverged",
        )
    assert got.stats.jobs_processed == want.stats.jobs_processed, (
        f"{label}: job accounting diverged"
    )


@pytest.mark.parametrize("engine", ENGINES)
class TestConcurrentMatchesSequential:
    def test_k_concurrent_jobs_match_k_sequential_runs(self, engine):
        stores, workload, ref_w = build_env()
        sequential = [
            make_engine(engine, CLUSTERS, stores, batch_size=2).run(spec, index)
            for _, spec, index, _ in workload
        ]
        service = BurstingService(
            CLUSTERS, stores, engine=engine, batch_size=2,
            tenants={
                "analytics": TenantConfig(weight=2.0),
                "ingest": TenantConfig(weight=1.0),
            },
        )
        try:
            handles = [
                service.submit(spec, index, tenant=tenant)
                for _, spec, index, tenant in workload
            ]
            results = [h.result(timeout=60) for h in handles]
        finally:
            service.shutdown()
        for (app, _, _, _), got, want, h in zip(
            workload, results, sequential, handles
        ):
            assert h.status() is JobState.DONE
            assert_job_matches(app, got, want, f"{engine}/{app}/{h.run_id}")
        assert sequential[0].result == ref_w  # sanity: reference is exact

    def test_concurrent_jobs_survive_worker_crash(self, engine):
        stores, workload, ref_w = build_env()
        opts = dict(
            batch_size=2, crash_plan={"cloud-w0": 0}, min_part_nbytes=0,
        )
        sequential = [
            make_engine(engine, CLUSTERS, stores, **opts).run(spec, index)
            for _, spec, index, _ in workload
        ]
        service = BurstingService(CLUSTERS, stores, engine=engine, **opts)
        try:
            handles = [
                service.submit(spec, index, tenant=tenant)
                for _, spec, index, tenant in workload
            ]
            results = [h.result(timeout=60) for h in handles]
        finally:
            service.shutdown()
        for (app, _, _, _), got, want, h in zip(
            workload, results, sequential, handles
        ):
            assert_job_matches(
                app, got, want, f"{engine}/crash/{app}/{h.run_id}"
            )
        # The crash happened and was contained.
        total_failed = sum(r.stats.n_failed_workers for r in results)
        assert total_failed >= 1
        if engine == "threaded":
            # One shared fleet: the worker dies once, in exactly one
            # job's fault rows -- per-job fault isolation.
            assert total_failed == 1
            crashed = [
                r for r in results if r.stats.n_failed_workers
            ]
            assert len(crashed) == 1
            assert crashed[0].stats.jobs_recovered >= 1
            for r in results:
                if r is not crashed[0]:
                    assert r.stats.n_failed_workers == 0

    def test_per_job_stats_isolation(self, engine):
        """Each job's RunStats accounts exactly its own chunks."""
        stores, workload, _ = build_env()
        service = BurstingService(CLUSTERS, stores, engine=engine, batch_size=2)
        try:
            handles = [
                service.submit(spec, index, tenant=tenant)
                for _, spec, index, tenant in workload
            ]
            results = [h.result(timeout=60) for h in handles]
        finally:
            service.shutdown()
        for (_, _, index, _), r in zip(workload, results):
            assert r.stats.jobs_processed == len(index.chunks)
            per_cluster = [
                c.jobs_processed for c in r.stats.clusters.values()
            ]
            assert sum(per_cluster) == len(index.chunks)
