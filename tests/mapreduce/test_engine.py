"""Unit tests for the baseline MapReduce engine."""

import numpy as np
import pytest

from repro.apps.wordcount import WordCountMapReduceSpec, wordcount_exact
from repro.data.dataset import distribute_dataset, write_dataset
from repro.data.formats import tokens_format
from repro.mapreduce.engine import MapReduceEngine


@pytest.fixture
def idx(tokens, local_store):
    return write_dataset(tokens, tokens_format(), local_store, n_files=3, chunk_units=700)


@pytest.fixture
def engine(local_store):
    return MapReduceEngine({"local": local_store}, n_mappers=3, n_reducers=2)


class TestCorrectness:
    def test_wordcount(self, tokens, idx, engine):
        assert engine.run(WordCountMapReduceSpec(), idx).result == wordcount_exact(tokens)

    def test_result_invariant_to_mapper_count(self, tokens, idx, local_store):
        r1 = MapReduceEngine({"local": local_store}, n_mappers=1, n_reducers=1).run(
            WordCountMapReduceSpec(), idx
        )
        r8 = MapReduceEngine({"local": local_store}, n_mappers=8, n_reducers=5).run(
            WordCountMapReduceSpec(), idx
        )
        assert r1.result == r8.result

    def test_result_invariant_to_flush_threshold(self, tokens, idx, local_store):
        small = MapReduceEngine(
            {"local": local_store}, n_mappers=2, n_reducers=2, combine_flush_pairs=16
        ).run(WordCountMapReduceSpec(), idx)
        big = MapReduceEngine(
            {"local": local_store}, n_mappers=2, n_reducers=2, combine_flush_pairs=10**6
        ).run(WordCountMapReduceSpec(), idx)
        assert small.result == big.result

    def test_runs_on_distributed_data(self, tokens, stores):
        idx = write_dataset(tokens, tokens_format(), stores["local"], n_files=4, chunk_units=500)
        idx = distribute_dataset(idx, stores, {"local": 0.5, "cloud": 0.5}, stores["local"])
        engine = MapReduceEngine(stores, n_mappers=2, n_reducers=2)
        assert engine.run(WordCountMapReduceSpec(), idx).result == wordcount_exact(tokens)


class TestShuffleAccounting:
    def test_plain_pairs_equal_map_output(self, tokens, idx, engine):
        res = engine.run(WordCountMapReduceSpec(with_combiner=False), idx)
        assert res.stats.map_output_pairs == len(tokens)
        assert res.stats.intermediate_pairs == len(tokens)
        assert res.stats.peak_buffer_pairs == 0

    def test_combine_reduces_intermediate_data(self, tokens, idx, engine):
        with_c = engine.run(WordCountMapReduceSpec(True), idx).stats
        without = engine.run(WordCountMapReduceSpec(False), idx).stats
        assert with_c.intermediate_pairs < without.intermediate_pairs
        assert with_c.intermediate_nbytes < without.intermediate_nbytes
        assert with_c.combine_invocations > 0

    def test_combine_still_buffers_pairs(self, tokens, idx, local_store):
        """The paper's point: combine cuts communication but the mapper
        still materializes (key, value) pairs in memory."""
        engine = MapReduceEngine(
            {"local": local_store}, n_mappers=1, n_reducers=1, combine_flush_pairs=512
        )
        res = engine.run(WordCountMapReduceSpec(True), idx)
        assert res.stats.peak_buffer_pairs == 512

    def test_flush_threshold_bounds_buffer(self, tokens, idx, local_store):
        engine = MapReduceEngine(
            {"local": local_store}, n_mappers=2, n_reducers=2, combine_flush_pairs=64
        )
        res = engine.run(WordCountMapReduceSpec(True), idx)
        assert res.stats.peak_buffer_pairs <= 64

    def test_intermediate_bytes_accounted(self, tokens, idx, engine):
        res = engine.run(WordCountMapReduceSpec(False), idx)
        # Each (int, int) pair is 8 (key) + 8 (value) bytes.
        assert res.stats.intermediate_nbytes == 16 * len(tokens)


class TestValidation:
    def test_invalid_mappers(self, local_store):
        with pytest.raises(ValueError):
            MapReduceEngine({"local": local_store}, n_mappers=0)

    def test_invalid_flush(self, local_store):
        with pytest.raises(ValueError):
            MapReduceEngine({"local": local_store}, combine_flush_pairs=0)
