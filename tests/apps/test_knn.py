"""Unit tests for the kNN application."""

import numpy as np
import pytest

from repro.apps.knn import KnnMapReduceSpec, KnnSpec, knn_exact
from repro.core.api import run_local_pass
from repro.data.units import iter_unit_groups


@pytest.fixture
def query():
    return np.full(4, 0.5)


class TestKnnSpec:
    def test_matches_exact(self, points, query):
        spec = KnnSpec(query, 9)
        robj = run_local_pass(spec, iter_unit_groups(points, 77))
        got = spec.finalize(robj)
        ref = knn_exact(points, query, 9)
        np.testing.assert_allclose([g[0] for g in got], [r[0] for r in ref])

    def test_payloads_are_points(self, points, query):
        spec = KnnSpec(query, 3)
        robj = run_local_pass(spec, iter_unit_groups(points, 100))
        for dist, pt in spec.finalize(robj):
            d = float(((pt - query) ** 2).sum())
            assert d == pytest.approx(dist)

    def test_group_size_invariance(self, points, query):
        spec = KnnSpec(query, 5)
        r1 = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 13)))
        r2 = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 500)))
        np.testing.assert_allclose([x[0] for x in r1], [x[0] for x in r2])

    def test_k_larger_than_data(self, query):
        pts = np.zeros((3, 4))
        spec = KnnSpec(query, 10)
        got = spec.finalize(run_local_pass(spec, [pts]))
        assert len(got) == 3

    def test_merge_across_workers(self, points, query):
        spec = KnnSpec(query, 6)
        half = len(points) // 2
        a = run_local_pass(spec, iter_unit_groups(points[:half], 64))
        b = run_local_pass(spec, iter_unit_groups(points[half:], 64))
        merged = spec.global_reduction([a, b])
        ref = knn_exact(points, query, 6)
        np.testing.assert_allclose(
            [x[0] for x in spec.finalize(merged)], [r[0] for r in ref]
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            KnnSpec(np.zeros((2, 2)), 3)
        with pytest.raises(ValueError):
            KnnSpec(np.zeros(2), 0)

    def test_robj_is_small(self, points, query):
        """The paper's knn has a small reduction object regardless of n."""
        spec = KnnSpec(query, 10)
        robj = run_local_pass(spec, iter_unit_groups(points, 100))
        assert robj.nbytes <= 10 * (8 + query.nbytes)


class TestKnnMapReduce:
    def test_matches_exact(self, points, query):
        from repro.mapreduce.engine import MapReduceEngine
        from repro.data.dataset import write_dataset
        from repro.data.formats import points_format
        from repro.storage.local import MemoryStore

        store = MemoryStore()
        idx = write_dataset(points, points_format(4), store, n_files=2, chunk_units=256)
        engine = MapReduceEngine({"local": store}, n_mappers=2, n_reducers=1)
        res = engine.run(KnnMapReduceSpec(query, 4), idx)
        ref = knn_exact(points, query, 4)
        np.testing.assert_allclose([x[0] for x in res.result], [r[0] for r in ref])

    def test_combiner_bounds_intermediate_pairs(self, points, query):
        from repro.mapreduce.engine import MapReduceEngine
        from repro.data.dataset import write_dataset
        from repro.data.formats import points_format
        from repro.storage.local import MemoryStore

        store = MemoryStore()
        idx = write_dataset(points, points_format(4), store, n_files=2, chunk_units=256)
        engine = MapReduceEngine(
            {"local": store}, n_mappers=2, n_reducers=1, combine_flush_pairs=128
        )
        with_c = engine.run(KnnMapReduceSpec(query, 4, with_combiner=True), idx)
        without = engine.run(KnnMapReduceSpec(query, 4, with_combiner=False), idx)
        assert with_c.stats.intermediate_pairs < without.stats.intermediate_pairs
        assert without.stats.intermediate_pairs == len(points)
