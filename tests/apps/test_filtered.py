"""Filtered workload variants and their pushdown contracts.

Two invariants per spec: (1) the filtered answer matches a direct
reference computation, and (2) ``relevant()`` is *sound* -- it never
returns False for a chunk whose fold contribution differs from the
identity (brute-checked over real chunkings).
"""

import numpy as np
import pytest

from repro.apps.filtered import (
    BoundingBoxKMeansSpec,
    BoundingBoxKnnSpec,
    FilteredWordCountSpec,
    TopKPageRankSpec,
    bounding_box_mask,
    filtered_wordcount_exact,
    topk_pagerank_window_exact,
)
from repro.apps.kmeans import lloyd_step
from repro.apps.knn import knn_exact
from repro.apps.pagerank import out_degrees, pagerank_step
from repro.core.api import run_local_pass, supports_pushdown
from repro.data.chunks import compute_chunk_stats
from repro.data.units import iter_unit_groups


def brute_check_soundness(spec, units, chunk_units=17):
    """relevant()==False must imply an identity fold contribution."""
    identity = spec.create_reduction_object().value()
    for start in range(0, len(units), chunk_units):
        chunk = units[start:start + chunk_units]
        if spec.relevant(compute_chunk_stats(chunk)):
            continue
        robj = spec.create_reduction_object()
        spec.local_reduction_batch(robj, chunk)
        got = robj.value()
        if isinstance(got, np.ndarray):
            assert np.array_equal(got, identity), "pruned chunk contributed"
        else:
            assert got == identity, "pruned chunk contributed"


class TestFilteredWordCount:
    def test_matches_reference(self, tokens):
        spec = FilteredWordCountSpec(10, 30)
        robj = run_local_pass(spec, iter_unit_groups(tokens, 97))
        assert spec.finalize(robj) == filtered_wordcount_exact(tokens, 10, 30)

    def test_empty_range_intersection(self, tokens):
        spec = FilteredWordCountSpec(1000, 2000)  # outside the vocab
        robj = run_local_pass(spec, iter_unit_groups(tokens, 97))
        assert spec.finalize(robj) == {}

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="lo must not exceed hi"):
            FilteredWordCountSpec(5, 4)

    def test_declares_pushdown(self, tokens):
        spec = FilteredWordCountSpec(10, 30)
        assert supports_pushdown(spec)
        brute_check_soundness(spec, np.sort(tokens))

    def test_priority_prefers_concentrated_chunks(self):
        spec = FilteredWordCountSpec(10, 20)
        inside = compute_chunk_stats(np.arange(10, 21))
        straddling = compute_chunk_stats(np.arange(0, 100))
        assert spec.priority(inside) > spec.priority(straddling)
        outside = compute_chunk_stats(np.arange(50, 60))
        assert spec.priority(outside) == 0.0


class TestBoundingBoxKMeans:
    def test_matches_reference(self, points):
        cents = points[:3].copy()
        lo, hi = -0.5, 0.5
        spec = BoundingBoxKMeansSpec(cents, lo, hi)
        robj = run_local_pass(spec, iter_unit_groups(points, 83))
        got = spec.finalize(robj)
        inside = points[bounding_box_mask(points, lo, hi)]
        ref = lloyd_step(inside, cents)
        np.testing.assert_allclose(got.centroids, ref.centroids)
        np.testing.assert_array_equal(got.counts, ref.counts)

    def test_scalar_bounds_broadcast(self, points):
        spec = BoundingBoxKMeansSpec(points[:2].copy(), 0.0, 1.0)
        assert spec.lo.shape == (4,) and spec.hi.shape == (4,)

    def test_rejects_inverted_box(self, points):
        with pytest.raises(ValueError, match="lower bounds"):
            BoundingBoxKMeansSpec(points[:2].copy(), 1.0, -1.0)

    def test_soundness(self, points):
        # Sort on dim 0 so chunks get narrow bboxes and pruning fires.
        ordered = points[np.argsort(points[:, 0])]
        spec = BoundingBoxKMeansSpec(points[:3].copy(), -0.2, 0.2)
        brute_check_soundness(spec, ordered)

    def test_priority_is_sampled_density(self, points):
        spec = BoundingBoxKMeansSpec(points[:2].copy(), -10.0, 10.0)
        st = compute_chunk_stats(points[:100])
        assert spec.priority(st) == 1.0  # everything is in a huge box


class TestBoundingBoxKnn:
    def test_matches_reference(self, points):
        query = np.full(4, 0.25)
        lo, hi = -0.6, 0.6
        spec = BoundingBoxKnnSpec(query, 7, lo, hi)
        robj = run_local_pass(spec, iter_unit_groups(points, 83))
        got = spec.finalize(robj)
        inside = points[bounding_box_mask(points, lo, hi)]
        ref = knn_exact(inside, query, 7)
        np.testing.assert_allclose(
            [g[0] for g in got], [r[0] for r in ref]
        )

    def test_soundness(self, points):
        ordered = points[np.argsort(points[:, 0])]
        spec = BoundingBoxKnnSpec(np.zeros(4), 5, -0.15, 0.15)
        brute_check_soundness(spec, ordered)

    def test_priority_is_best_first_distance(self, points):
        query = np.zeros(4)
        spec = BoundingBoxKnnSpec(query, 5, -1.0, 1.0)
        near = compute_chunk_stats(np.full((10, 4), 0.1))
        far = compute_chunk_stats(np.full((10, 4), 5.0))
        assert spec.priority(near) > spec.priority(far)
        containing = compute_chunk_stats(np.vstack([-np.ones(4), np.ones(4)]))
        assert spec.priority(containing) == 0.0  # query inside the bbox


class TestTopKPageRank:
    def test_matches_reference(self, edges):
        n = 300
        ranks = np.full(n, 1.0 / n)
        outdeg = out_degrees(edges, n)
        spec = TopKPageRankSpec(ranks, outdeg, 40, 79)
        robj = run_local_pass(spec, iter_unit_groups(edges, 131))
        got = spec.finalize(robj)
        ref = topk_pagerank_window_exact(edges, ranks, outdeg, 40, 79)
        assert got.shape == (40,)
        np.testing.assert_allclose(got, ref)

    def test_window_agrees_with_full_pagerank(self, edges):
        n = 300
        ranks = np.full(n, 1.0 / n)
        outdeg = out_degrees(edges, n)
        full = pagerank_step(edges, ranks, outdeg)
        spec = TopKPageRankSpec(ranks, outdeg, 40, 79)
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(edges, 131)))
        np.testing.assert_allclose(got, full[40:80])

    def test_window_validation(self, edges):
        n = 300
        ranks = np.full(n, 1.0 / n)
        outdeg = out_degrees(edges, n)
        with pytest.raises(ValueError, match="dst_lo"):
            TopKPageRankSpec(ranks, outdeg, 50, 40)
        with pytest.raises(ValueError, match="out of range"):
            TopKPageRankSpec(ranks, outdeg, 0, n)

    def test_reduction_object_is_window_sized(self, edges):
        n = 300
        ranks = np.full(n, 1.0 / n)
        outdeg = out_degrees(edges, n)
        spec = TopKPageRankSpec(ranks, outdeg, 10, 19)
        assert spec.create_reduction_object().value().shape == (10,)

    def test_soundness(self, edges):
        n = 300
        ranks = np.full(n, 1.0 / n)
        outdeg = out_degrees(edges, n)
        # Sort by destination so chunk dst-ranges are narrow.
        ordered = edges[np.argsort(edges[:, 1])]
        spec = TopKPageRankSpec(ranks, outdeg, 100, 149)
        brute_check_soundness(spec, ordered)

    def test_relevant_keys_on_dst_field(self, edges):
        n = 300
        ranks = np.full(n, 1.0 / n)
        outdeg = out_degrees(edges, n)
        spec = TopKPageRankSpec(ranks, outdeg, 100, 149)
        below = compute_chunk_stats(
            np.array([[150, 10], [200, 99]], dtype=edges.dtype)
        )
        assert not spec.relevant(below)  # dst in [10, 99] misses window
        inside = compute_chunk_stats(
            np.array([[0, 120]], dtype=edges.dtype)
        )
        assert spec.relevant(inside)
