"""Unit tests for the application registry."""

import numpy as np
import pytest

from repro.apps.base import APPLICATIONS, Application, get_application, register_application
from repro.core.api import GeneralizedReductionSpec
from repro.core.mapreduce_api import MapReduceSpec


class TestRegistry:
    def test_paper_apps_registered(self):
        assert {"knn", "kmeans", "pagerank", "wordcount"} <= set(APPLICATIONS)

    def test_get_application(self):
        app = get_application("knn")
        assert app.name == "knn"
        assert app.profile == "io-bound"

    def test_unknown_application(self):
        with pytest.raises(KeyError):
            get_application("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_application(APPLICATIONS["knn"])

    def test_params_with_defaults(self):
        app = get_application("kmeans")
        p = app.params_with_defaults(k=25)
        assert p["k"] == 25
        assert p["dim"] == 8

    def test_profiles_match_paper(self):
        assert get_application("kmeans").profile == "cpu-bound"
        assert get_application("pagerank").profile == "balanced"


class TestFactories:
    def test_generate_and_format_consistent(self):
        for name in ("knn", "kmeans", "pagerank", "wordcount"):
            app = get_application(name)
            fmt = app.make_format(**app.default_params)
            units = app.generate(100, seed=3, **app.default_params)
            # Generated units must round-trip through the app's format.
            decoded = fmt.decode(fmt.encode(units))
            np.testing.assert_array_equal(decoded, units.astype(fmt.dtype))

    def test_gr_spec_construction(self):
        knn = get_application("knn")
        spec = knn.make_gr_spec(np.zeros(8), k=5)
        assert isinstance(spec, GeneralizedReductionSpec)

        kmeans = get_application("kmeans")
        spec = kmeans.make_gr_spec(np.zeros((3, 8)))
        assert isinstance(spec, GeneralizedReductionSpec)

        pr = get_application("pagerank")
        spec = pr.make_gr_spec((np.full(10, 0.1), np.ones(10)))
        assert isinstance(spec, GeneralizedReductionSpec)

        wc = get_application("wordcount")
        assert isinstance(wc.make_gr_spec(), GeneralizedReductionSpec)

    def test_mr_spec_construction(self):
        knn = get_application("knn")
        assert isinstance(knn.make_mr_spec(np.zeros(8), k=5), MapReduceSpec)
        wc = get_application("wordcount")
        assert isinstance(wc.make_mr_spec(with_combiner=False), MapReduceSpec)
