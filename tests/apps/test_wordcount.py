"""Unit tests for the wordcount application."""

import numpy as np
import pytest

from repro.apps.wordcount import WordCountMapReduceSpec, WordCountSpec, wordcount_exact
from repro.core.api import run_local_pass
from repro.data.units import iter_unit_groups


class TestWordCountSpec:
    def test_matches_exact(self, tokens):
        spec = WordCountSpec()
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(tokens, 123)))
        assert got == wordcount_exact(tokens)

    def test_group_size_invariance(self, tokens):
        spec = WordCountSpec()
        r1 = spec.finalize(run_local_pass(spec, iter_unit_groups(tokens, 11)))
        r2 = spec.finalize(run_local_pass(spec, iter_unit_groups(tokens, 4000)))
        assert r1 == r2

    def test_merge_across_workers(self, tokens):
        spec = WordCountSpec()
        a = run_local_pass(spec, iter_unit_groups(tokens[:3000], 512))
        b = run_local_pass(spec, iter_unit_groups(tokens[3000:], 512))
        got = spec.finalize(spec.global_reduction([a, b]))
        assert got == wordcount_exact(tokens)

    def test_total_count_conserved(self, tokens):
        spec = WordCountSpec()
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(tokens, 256)))
        assert sum(got.values()) == len(tokens)

    def test_robj_bounded_by_vocab(self, tokens):
        spec = WordCountSpec()
        robj = run_local_pass(spec, iter_unit_groups(tokens, 256))
        assert robj.nbytes <= 64 * 16  # vocab of 64, 16 bytes/entry


class TestWordCountMapReduce:
    def test_matches_exact_both_variants(self, tokens, local_store):
        from repro.data.dataset import write_dataset
        from repro.data.formats import tokens_format
        from repro.mapreduce.engine import MapReduceEngine

        idx = write_dataset(tokens, tokens_format(), local_store, n_files=2, chunk_units=1000)
        engine = MapReduceEngine({"local": local_store}, n_mappers=2, n_reducers=2)
        exact = wordcount_exact(tokens)
        assert engine.run(WordCountMapReduceSpec(True), idx).result == exact
        assert engine.run(WordCountMapReduceSpec(False), idx).result == exact

    def test_combine_shrinks_shuffle(self, tokens, local_store):
        from repro.data.dataset import write_dataset
        from repro.data.formats import tokens_format
        from repro.mapreduce.engine import MapReduceEngine

        idx = write_dataset(tokens, tokens_format(), local_store, n_files=2, chunk_units=1000)
        engine = MapReduceEngine({"local": local_store}, n_mappers=2, n_reducers=2)
        with_c = engine.run(WordCountMapReduceSpec(True), idx).stats
        without = engine.run(WordCountMapReduceSpec(False), idx).stats
        assert with_c.intermediate_nbytes < without.intermediate_nbytes / 5
