"""Unit tests for distributed linear regression."""

import numpy as np
import pytest

from repro.apps.regression import (
    LinearRegressionMapReduceSpec,
    LinearRegressionSpec,
    generate_regression_rows,
    regression_exact,
)
from repro.core.api import run_local_pass
from repro.data.units import iter_unit_groups


@pytest.fixture
def rows():
    return generate_regression_rows(3000, 5, noise=0.2, seed=101)


class TestLinearRegressionSpec:
    def test_matches_lstsq(self, rows):
        spec = LinearRegressionSpec(5)
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(rows, 256)))
        ref = regression_exact(rows)
        np.testing.assert_allclose(got.coef, ref.coef, rtol=1e-8)
        assert got.intercept == pytest.approx(ref.intercept, rel=1e-8)
        assert got.r_squared == pytest.approx(ref.r_squared, rel=1e-8)
        assert got.n_rows == 3000

    def test_recovers_true_model_without_noise(self):
        rows = generate_regression_rows(2000, 3, noise=0.0, seed=7)
        spec = LinearRegressionSpec(3)
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(rows, 500)))
        assert got.r_squared == pytest.approx(1.0)
        # Residuals vanish: predictions reproduce y exactly.
        pred = rows[:, :3] @ got.coef + got.intercept
        np.testing.assert_allclose(pred, rows[:, 3], atol=1e-8)

    def test_merge_across_workers(self, rows):
        spec = LinearRegressionSpec(5)
        a = run_local_pass(spec, iter_unit_groups(rows[:1000], 128))
        b = run_local_pass(spec, iter_unit_groups(rows[1000:], 128))
        got = spec.finalize(spec.global_reduction([a, b]))
        ref = regression_exact(rows)
        np.testing.assert_allclose(got.coef, ref.coef, rtol=1e-8)

    def test_group_size_invariance(self, rows):
        spec = LinearRegressionSpec(5)
        g1 = spec.finalize(run_local_pass(spec, iter_unit_groups(rows, 13)))
        g2 = spec.finalize(run_local_pass(spec, iter_unit_groups(rows, 3000)))
        np.testing.assert_allclose(g1.coef, g2.coef, rtol=1e-10)

    def test_zero_rows_rejected(self):
        spec = LinearRegressionSpec(2)
        robj = spec.create_reduction_object()
        with pytest.raises(ValueError):
            spec.finalize(robj)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            LinearRegressionSpec(0)

    def test_robj_size_independent_of_n(self, rows):
        spec = LinearRegressionSpec(5)
        robj = run_local_pass(spec, iter_unit_groups(rows, 512))
        assert robj.nbytes == (5 + 3) ** 2 * 8

    def test_threaded_end_to_end(self, rows):
        from repro.bursting.driver import run_threaded_bursting
        from repro.storage.local import MemoryStore

        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        rr = run_threaded_bursting(
            LinearRegressionSpec(5), rows, stores, local_fraction=1 / 3
        )
        ref = regression_exact(rows)
        np.testing.assert_allclose(rr.result.coef, ref.coef, rtol=1e-8)


class TestLinearRegressionMapReduce:
    def test_matches_gr(self, rows, local_store):
        from repro.data.dataset import write_dataset
        from repro.data.formats import points_format
        from repro.mapreduce.engine import MapReduceEngine

        idx = write_dataset(rows, points_format(6), local_store, n_files=2, chunk_units=500)
        engine = MapReduceEngine({"local": local_store}, n_mappers=2, n_reducers=1)
        mr = engine.run(LinearRegressionMapReduceSpec(5), idx)
        ref = regression_exact(rows)
        np.testing.assert_allclose(mr.result.coef, ref.coef, rtol=1e-8)
