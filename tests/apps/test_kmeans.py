"""Unit tests for the k-means application."""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansMapReduceSpec, KMeansSpec, lloyd_step
from repro.core.api import run_local_pass
from repro.data.generator import generate_points
from repro.data.units import iter_unit_groups


@pytest.fixture
def centroids():
    return generate_points(5, 4, seed=21)


class TestKMeansSpec:
    def test_matches_reference(self, points, centroids):
        spec = KMeansSpec(centroids)
        res = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 111)))
        ref = lloyd_step(points, centroids)
        np.testing.assert_allclose(res.centroids, ref.centroids)
        np.testing.assert_array_equal(res.counts, ref.counts)
        assert res.sse == pytest.approx(ref.sse)

    def test_counts_sum_to_n(self, points, centroids):
        spec = KMeansSpec(centroids)
        res = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 64)))
        assert res.counts.sum() == len(points)

    def test_group_size_invariance(self, points, centroids):
        spec = KMeansSpec(centroids)
        r1 = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 17)))
        r2 = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 999)))
        np.testing.assert_allclose(r1.centroids, r2.centroids)
        assert r1.sse == pytest.approx(r2.sse)

    def test_empty_cluster_keeps_centroid(self):
        pts = np.zeros((10, 2))
        cents = np.array([[0.0, 0.0], [100.0, 100.0]])
        spec = KMeansSpec(cents)
        res = spec.finalize(run_local_pass(spec, [pts]))
        assert res.counts[1] == 0
        np.testing.assert_array_equal(res.centroids[1], [100.0, 100.0])

    def test_merge_across_workers(self, points, centroids):
        spec = KMeansSpec(centroids)
        a = run_local_pass(spec, iter_unit_groups(points[:1000], 100))
        b = run_local_pass(spec, iter_unit_groups(points[1000:], 100))
        res = spec.finalize(spec.global_reduction([a, b]))
        ref = lloyd_step(points, centroids)
        np.testing.assert_allclose(res.centroids, ref.centroids)

    def test_iteration_decreases_sse(self, points, centroids):
        """Lloyd iterations are monotone in SSE -- a classic invariant."""
        cents = centroids
        last = np.inf
        for _ in range(4):
            spec = KMeansSpec(cents)
            res = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 256)))
            assert res.sse <= last + 1e-9
            last = res.sse
            cents = res.centroids

    def test_invalid_centroids(self):
        with pytest.raises(ValueError):
            KMeansSpec(np.zeros(3))
        with pytest.raises(ValueError):
            KMeansSpec(np.zeros((0, 3)))

    def test_robj_small(self, points, centroids):
        spec = KMeansSpec(centroids)
        robj = run_local_pass(spec, iter_unit_groups(points, 100))
        # (k, d+2) float64 regardless of dataset size.
        assert robj.nbytes == 5 * 6 * 8


class TestKMeansMapReduce:
    def test_matches_reference(self, points, centroids, local_store):
        from repro.data.dataset import write_dataset
        from repro.data.formats import points_format
        from repro.mapreduce.engine import MapReduceEngine

        idx = write_dataset(points, points_format(4), local_store, n_files=2, chunk_units=300)
        engine = MapReduceEngine({"local": local_store}, n_mappers=3, n_reducers=2)
        res = engine.run(KMeansMapReduceSpec(centroids), idx)
        ref = lloyd_step(points, centroids)
        np.testing.assert_allclose(res.result.centroids, ref.centroids)
        assert res.result.sse == pytest.approx(ref.sse)

    def test_plain_mr_emits_pair_per_point(self, points, centroids, local_store):
        from repro.data.dataset import write_dataset
        from repro.data.formats import points_format
        from repro.mapreduce.engine import MapReduceEngine

        idx = write_dataset(points, points_format(4), local_store, n_files=2, chunk_units=300)
        engine = MapReduceEngine({"local": local_store}, n_mappers=2, n_reducers=2)
        res = engine.run(KMeansMapReduceSpec(centroids, with_combiner=False), idx)
        assert res.stats.intermediate_pairs == len(points)
