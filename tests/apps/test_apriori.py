"""Unit tests for apriori frequent-itemset mining."""

import numpy as np
import pytest

from repro.apps.apriori import (
    PAD,
    AprioriMapReduceSpec,
    AprioriPassSpec,
    apriori_exact,
    apriori_mine,
    candidate_join,
    generate_transactions,
    transactions_format,
)
from repro.core.api import run_local_pass
from repro.data.units import iter_unit_groups


@pytest.fixture
def txns():
    return generate_transactions(1500, n_items=40, basket_width=10, seed=111)


def brute_force_supports(txns, itemsets):
    """Independent support counts via Python sets."""
    baskets = [set(r[r != PAD].tolist()) for r in txns]
    return {
        tuple(c): sum(1 for b in baskets if b.issuperset(c)) for c in itemsets
    }


class TestPassSpec:
    def test_single_item_pass_matches_brute_force(self, txns):
        fmt = transactions_format(10)
        spec = AprioriPassSpec(fmt, None)
        counts = run_local_pass(spec, iter_unit_groups(txns, 128)).value()
        items = sorted({i for r in txns for i in r[r != PAD].tolist()})
        expect = brute_force_supports(txns, [(i,) for i in items])
        assert counts == {k: v for k, v in expect.items() if v > 0}

    def test_pair_pass_matches_brute_force(self, txns):
        fmt = transactions_format(10)
        cands = [(0, 1), (1, 2), (3, 7), (10, 20)]
        spec = AprioriPassSpec(fmt, cands)
        counts = run_local_pass(spec, iter_unit_groups(txns, 200)).value()
        expect = brute_force_supports(txns, cands)
        for c in cands:
            assert counts.get(c, 0) == expect[c]

    def test_merge_across_workers(self, txns):
        fmt = transactions_format(10)
        spec = AprioriPassSpec(fmt, None)
        a = run_local_pass(spec, iter_unit_groups(txns[:700], 100))
        b = run_local_pass(spec, iter_unit_groups(txns[700:], 100))
        merged = spec.global_reduction([a, b]).value()
        whole = run_local_pass(spec, iter_unit_groups(txns, 100)).value()
        assert merged == whole


class TestCandidateJoin:
    def test_joins_shared_prefixes(self):
        freq = [(1, 2), (1, 3), (2, 3)]
        assert candidate_join(freq) == [(1, 2, 3)]

    def test_prunes_infrequent_subsets(self):
        # (1,2,3) needs (2,3) frequent; it is not.
        freq = [(1, 2), (1, 3)]
        assert candidate_join(freq) == []

    def test_singletons_to_pairs(self):
        freq = [(3,), (1,), (2,)]
        assert candidate_join(freq) == [(1, 2), (1, 3), (2, 3)]

    def test_empty(self):
        assert candidate_join([]) == []

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            candidate_join([(1,), (1, 2)])


class TestMiner:
    def test_finds_planted_patterns(self):
        txns = generate_transactions(
            2000, n_items=60, basket_width=10, n_patterns=3, pattern_len=3, seed=5
        )
        result = apriori_exact(txns, min_support=150, max_len=3)
        # The planted 3-item patterns appear in ~1/6 of baskets each,
        # far above the noise floor: at least one full triple survives.
        triples = [k for k in result if len(k) == 3]
        assert triples
        # And every reported support is exact.
        check = brute_force_supports(txns, list(result))
        assert all(result[k] == check[k] for k in result)

    def test_supports_are_monotone(self):
        txns = generate_transactions(1000, n_items=30, basket_width=8, seed=6)
        result = apriori_exact(txns, min_support=50, max_len=3)
        for itemset, support in result.items():
            for sub_len in range(1, len(itemset)):
                from itertools import combinations

                for sub in combinations(itemset, sub_len):
                    assert result.get(tuple(sub), 0) >= support

    def test_min_support_validation(self, txns):
        with pytest.raises(ValueError):
            apriori_exact(txns, min_support=0)

    def test_distributed_passes_match_local(self, txns):
        """apriori_mine over the threaded middleware == single machine."""
        from repro.bursting.session import BurstingSession
        from repro.storage.local import MemoryStore

        fmt = transactions_format(10)
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        session = BurstingSession.from_units(txns, fmt, stores, local_fraction=0.5)

        def run_pass(spec):
            return session.run(spec).result

        distributed = apriori_mine(run_pass, fmt, min_support=100, max_len=3)
        local = apriori_exact(txns, min_support=100, max_len=3)
        assert distributed == local


class TestMapReduceParity:
    def test_first_pass_matches(self, txns, local_store):
        from repro.data.dataset import write_dataset
        from repro.mapreduce.engine import MapReduceEngine

        fmt = transactions_format(10)
        idx = write_dataset(txns, fmt, local_store, n_files=2, chunk_units=300)
        engine = MapReduceEngine({"local": local_store}, n_mappers=2, n_reducers=2)
        mr = engine.run(AprioriMapReduceSpec(fmt, None), idx)
        gr = run_local_pass(AprioriPassSpec(fmt, None), iter_unit_groups(txns, 300))
        assert mr.result == gr.value()


class TestGenerator:
    def test_rows_padded_and_sorted(self, txns):
        for row in txns[:50]:
            items = row[row != PAD]
            assert len(set(items.tolist())) == len(items)
            assert (np.diff(items) > 0).all()
        assert (txns >= PAD).all()

    def test_deterministic(self):
        a = generate_transactions(100, seed=3)
        b = generate_transactions(100, seed=3)
        assert np.array_equal(a, b)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            generate_transactions(10, basket_width=2, pattern_len=3)
