"""Unit tests for the stats application."""

import numpy as np
import pytest

from repro.apps.stats import ColumnStatsMapReduceSpec, ColumnStatsSpec, column_stats_exact
from repro.core.api import run_local_pass
from repro.data.units import iter_unit_groups


class TestColumnStatsSpec:
    def test_matches_numpy(self, points):
        spec = ColumnStatsSpec(4)
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 128)))
        ref = column_stats_exact(points)
        assert got["count"] == ref["count"]
        np.testing.assert_allclose(got["mean"], ref["mean"])
        np.testing.assert_allclose(got["std"], ref["std"], rtol=1e-9)
        np.testing.assert_allclose(got["min"], ref["min"])
        np.testing.assert_allclose(got["max"], ref["max"])

    def test_histogram_covers_all_samples(self, points):
        spec = ColumnStatsSpec(4)
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 128)))
        h = got["histogram"]
        assert h["counts"].sum() + h["underflow"] + h["overflow"] == len(points)

    def test_group_size_invariance(self, points):
        spec = ColumnStatsSpec(4)
        a = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 7)))
        b = spec.finalize(run_local_pass(spec, iter_unit_groups(points, 2000)))
        np.testing.assert_allclose(a["mean"], b["mean"])
        np.testing.assert_allclose(a["std"], b["std"], atol=1e-9)
        np.testing.assert_array_equal(a["histogram"]["counts"], b["histogram"]["counts"])

    def test_merge_across_workers(self, points):
        spec = ColumnStatsSpec(4)
        a = run_local_pass(spec, iter_unit_groups(points[:900], 100))
        b = run_local_pass(spec, iter_unit_groups(points[900:], 100))
        got = spec.finalize(spec.global_reduction([a, b]))
        ref = column_stats_exact(points)
        np.testing.assert_allclose(got["std"], ref["std"], rtol=1e-9)

    def test_threaded_end_to_end(self, points):
        from repro.bursting.driver import run_threaded_bursting
        from repro.storage.local import MemoryStore

        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        rr = run_threaded_bursting(
            ColumnStatsSpec(4), points, stores, local_fraction=0.5
        )
        ref = column_stats_exact(points)
        np.testing.assert_allclose(rr.result["mean"], ref["mean"])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ColumnStatsSpec(0)
        with pytest.raises(ValueError):
            ColumnStatsSpec(2, hist_range=(1.0, 0.0))


class TestColumnStatsMapReduce:
    def test_matches_gr(self, points, local_store):
        from repro.data.dataset import write_dataset
        from repro.data.formats import points_format
        from repro.mapreduce.engine import MapReduceEngine

        idx = write_dataset(points, points_format(4), local_store, n_files=2, chunk_units=300)
        engine = MapReduceEngine({"local": local_store}, n_mappers=2, n_reducers=2)
        mr = engine.run(ColumnStatsMapReduceSpec(4), idx)
        ref = column_stats_exact(points)
        np.testing.assert_allclose(mr.result["mean"], ref["mean"])
        np.testing.assert_allclose(mr.result["std"], ref["std"], rtol=1e-6)

    def test_registered(self):
        from repro.apps.base import get_application

        app = get_application("stats")
        assert app.profile == "io-bound"
        spec = app.make_gr_spec(dim=3)
        assert isinstance(spec, ColumnStatsSpec)
