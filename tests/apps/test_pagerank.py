"""Unit tests for the PageRank application."""

import numpy as np
import pytest

from repro.apps.pagerank import (
    PageRankMapReduceSpec,
    PageRankSpec,
    out_degrees,
    pagerank_reference,
    pagerank_step,
)
from repro.core.api import run_local_pass
from repro.data.units import iter_unit_groups

N_PAGES = 300


@pytest.fixture
def state(edges):
    outdeg = out_degrees(edges, N_PAGES)
    ranks = np.full(N_PAGES, 1.0 / N_PAGES)
    return ranks, outdeg


class TestPageRankSpec:
    def test_matches_reference_step(self, edges, state):
        ranks, outdeg = state
        spec = PageRankSpec(ranks, outdeg)
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(edges, 97)))
        ref = pagerank_step(edges, ranks, outdeg)
        np.testing.assert_allclose(got, ref)

    def test_rank_mass_conserved(self, edges, state):
        ranks, outdeg = state
        spec = PageRankSpec(ranks, outdeg)
        got = spec.finalize(run_local_pass(spec, iter_unit_groups(edges, 128)))
        assert got.sum() == pytest.approx(1.0)

    def test_group_size_invariance(self, edges, state):
        ranks, outdeg = state
        spec = PageRankSpec(ranks, outdeg)
        r1 = spec.finalize(run_local_pass(spec, iter_unit_groups(edges, 7)))
        r2 = spec.finalize(run_local_pass(spec, iter_unit_groups(edges, 5000)))
        np.testing.assert_allclose(r1, r2)

    def test_merge_across_workers(self, edges, state):
        ranks, outdeg = state
        spec = PageRankSpec(ranks, outdeg)
        a = run_local_pass(spec, iter_unit_groups(edges[:2500], 500))
        b = run_local_pass(spec, iter_unit_groups(edges[2500:], 500))
        got = spec.finalize(spec.global_reduction([a, b]))
        ref = pagerank_step(edges, ranks, outdeg)
        np.testing.assert_allclose(got, ref)

    def test_iterates_to_networkx_fixed_point(self, edges):
        """Converged ranks must match networkx's PageRank."""
        import networkx as nx

        outdeg = out_degrees(edges, N_PAGES)
        ranks = np.full(N_PAGES, 1.0 / N_PAGES)
        for _ in range(100):
            spec = PageRankSpec(ranks, outdeg)
            new = spec.finalize(run_local_pass(spec, iter_unit_groups(edges, 1000)))
            if np.abs(new - ranks).sum() < 1e-12:
                break
            ranks = new
        g = nx.MultiDiGraph()
        g.add_nodes_from(range(N_PAGES))
        g.add_edges_from(map(tuple, edges))
        nx_ranks = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=200)
        np.testing.assert_allclose(
            ranks, [nx_ranks[i] for i in range(N_PAGES)], atol=1e-6
        )

    def test_dangling_mass_redistributed(self):
        # Page 2 has no outgoing edges.
        edges = np.array([[0, 1], [1, 2]])
        outdeg = out_degrees(edges, 3)
        ranks = np.array([0.2, 0.3, 0.5])
        spec = PageRankSpec(ranks, outdeg)
        got = spec.finalize(run_local_pass(spec, [edges]))
        ref = pagerank_step(edges, ranks, outdeg)
        np.testing.assert_allclose(got, ref)
        assert got.sum() == pytest.approx(1.0)

    def test_robj_scales_with_pages(self, state):
        ranks, outdeg = state
        spec = PageRankSpec(ranks, outdeg)
        assert spec.create_reduction_object().nbytes == N_PAGES * 8

    def test_invalid_args(self, state):
        ranks, outdeg = state
        with pytest.raises(ValueError):
            PageRankSpec(ranks, outdeg[:-1])
        with pytest.raises(ValueError):
            PageRankSpec(ranks, outdeg, damping=1.5)


class TestReference:
    def test_reference_converges_and_sums_to_one(self, edges):
        ranks = pagerank_reference(edges, N_PAGES)
        assert ranks.sum() == pytest.approx(1.0)
        assert (ranks > 0).all()


class TestPageRankMapReduce:
    def test_matches_reference(self, edges, state, local_store):
        from repro.data.dataset import write_dataset
        from repro.data.formats import edges_format
        from repro.mapreduce.engine import MapReduceEngine

        ranks, outdeg = state
        idx = write_dataset(edges, edges_format(), local_store, n_files=2, chunk_units=600)
        engine = MapReduceEngine({"local": local_store}, n_mappers=2, n_reducers=3)
        res = engine.run(PageRankMapReduceSpec(ranks, outdeg), idx)
        np.testing.assert_allclose(res.result, pagerank_step(edges, ranks, outdeg))
