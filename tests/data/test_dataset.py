"""Unit tests for dataset writing, distribution, and chunk reads."""

import numpy as np
import pytest

from repro.data.dataset import (
    distribute_dataset,
    read_all_units,
    read_chunk,
    write_dataset,
)
from repro.data.formats import points_format


class TestWriteDataset:
    def test_roundtrip(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=4, chunk_units=100)
        back = read_all_units(idx, {"local": local_store})
        assert np.array_equal(back, points)

    def test_file_sizes_nearly_equal(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=7, chunk_units=50)
        sizes = [f.n_units for f in idx.files]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == len(points)

    def test_files_exist_in_store(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=3, chunk_units=100)
        assert local_store.list_keys() == sorted(f.key for f in idx.files)

    def test_too_many_files_raises(self, pts_fmt, local_store):
        with pytest.raises(ValueError):
            write_dataset(np.zeros((2, 4)), pts_fmt, local_store, n_files=3, chunk_units=1)

    def test_invalid_n_files(self, points, pts_fmt, local_store):
        with pytest.raises(ValueError):
            write_dataset(points, pts_fmt, local_store, n_files=0, chunk_units=10)


class TestReadChunk:
    def test_chunk_contents_match_slice(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=2, chunk_units=300)
        # Chunk 1 of file 0 covers units [300, 600) of the first half.
        chunk = idx.chunks[1]
        got = read_chunk(idx, chunk.chunk_id, {"local": local_store})
        assert np.array_equal(got, points[300:600])

    def test_dense_id_check(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=2, chunk_units=300)
        idx.chunks.pop(0)
        with pytest.raises(ValueError):
            read_chunk(idx, 0, {"local": local_store})


class TestDistributeDataset:
    def test_moves_files_and_preserves_data(self, points, pts_fmt, stores):
        local = stores["local"]
        idx = write_dataset(points, pts_fmt, local, n_files=8, chunk_units=100)
        placed = distribute_dataset(idx, stores, {"local": 0.5, "cloud": 0.5}, local)
        back = read_all_units(placed, stores)
        assert np.array_equal(back, points)

    def test_moved_files_deleted_from_source(self, points, pts_fmt, stores):
        local = stores["local"]
        idx = write_dataset(points, pts_fmt, local, n_files=4, chunk_units=100)
        placed = distribute_dataset(idx, stores, {"local": 0.5, "cloud": 0.5}, local)
        cloud_keys = {f.key for f in placed.files if f.location == "cloud"}
        for key in cloud_keys:
            assert not local.exists(key)
            assert stores["cloud"].exists(key)

    def test_all_cloud(self, points, pts_fmt, stores):
        local = stores["local"]
        idx = write_dataset(points, pts_fmt, local, n_files=4, chunk_units=100)
        placed = distribute_dataset(idx, stores, {"cloud": 1.0}, local)
        assert placed.locations == ["cloud"]
        assert local.list_keys() == []

    def test_read_all_units_empty_index(self, pts_fmt, stores):
        from repro.data.index import build_index

        idx = build_index(pts_fmt, [], chunk_units=5)
        out = read_all_units(idx, stores)
        assert out.shape[0] == 0


class TestCompressedDataset:
    """The organizer writing pre-compressed files (codec frames)."""

    @pytest.mark.parametrize("codec", ["identity", "zlib", "lz4", "shuffle"])
    def test_roundtrip_every_codec(self, points, pts_fmt, local_store, codec):
        idx = write_dataset(
            points, pts_fmt, local_store, n_files=4, chunk_units=100,
            codec=codec,
        )
        back = read_all_units(idx, {"local": local_store})
        assert np.array_equal(back, points)

    def test_index_records_encoded_ranges(self, points, pts_fmt, local_store):
        idx = write_dataset(
            points, pts_fmt, local_store, n_files=3, chunk_units=100,
            codec="shuffle",
        )
        assert idx.meta["codec"] == "shuffle"
        for c in idx.chunks:
            assert c.codec == "shuffle"
            assert c.enc_offset is not None and c.enc_nbytes > 0
            # Logical geometry is untouched.
            assert c.nbytes == c.n_units * pts_fmt.unit_nbytes
        # Encoded frames tile each stored object exactly.
        by_file = {}
        for c in idx.chunks:
            by_file.setdefault(c.key, []).append(c)
        for key, chunks in by_file.items():
            chunks.sort(key=lambda c: c.enc_offset)
            pos = 0
            for c in chunks:
                assert c.enc_offset == pos
                pos += c.enc_nbytes
            assert pos == len(local_store.get(key))

    def test_compressible_data_shrinks_stored_bytes(self, local_store):
        pts = np.arange(8000, dtype=np.float64).reshape(2000, 4)
        fmt = points_format(4)
        idx = write_dataset(
            pts, fmt, local_store, n_files=2, chunk_units=250, codec="shuffle"
        )
        stored = sum(len(local_store.get(f.key)) for f in idx.files)
        assert stored < idx.nbytes / 2
        # FileInfo.nbytes stays logical (placement fractions are
        # fractions of data, not of wire bytes).
        assert sum(f.nbytes for f in idx.files) == idx.nbytes

    def test_index_survives_json_roundtrip(self, points, pts_fmt, local_store):
        from repro.data.index import DataIndex

        idx = write_dataset(
            points, pts_fmt, local_store, n_files=2, chunk_units=200,
            codec="zlib",
        )
        back = DataIndex.from_json(idx.to_json())
        assert [c.to_dict() for c in back.chunks] == [c.to_dict() for c in idx.chunks]
        got = read_all_units(back, {"local": local_store})
        assert np.array_equal(got, points)

    def test_distribute_preserves_encoded_chunks(self, points, pts_fmt, stores):
        idx = write_dataset(
            points, pts_fmt, stores["local"], n_files=4, chunk_units=100,
            codec="shuffle",
        )
        placed = distribute_dataset(
            idx, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
        )
        assert {c.location for c in placed.chunks} == {"local", "cloud"}
        for c in placed.chunks:
            assert c.codec == "shuffle" and c.enc_nbytes is not None
        back = read_all_units(placed, stores)
        assert np.array_equal(back, points)

    def test_checksums_cover_logical_bytes(self, points, pts_fmt, local_store):
        from repro.data.integrity import attach_checksums, verify_dataset

        plain = write_dataset(
            points, pts_fmt, local_store, n_files=2, chunk_units=200,
        )
        plain = attach_checksums(plain, {"local": local_store})
        enc_store = type(local_store)("local")
        enc = write_dataset(
            points, pts_fmt, enc_store, n_files=2, chunk_units=200,
            codec="shuffle",
        )
        enc = attach_checksums(enc, {"local": enc_store})
        # Same logical bytes -> same CRCs, regardless of the codec.
        assert [c.crc32 for c in enc.chunks] == [c.crc32 for c in plain.chunks]
        assert verify_dataset(enc, {"local": enc_store}) == []

    def test_corrupt_frame_scrubs_as_damaged(self, points, pts_fmt, local_store):
        from repro.data.integrity import attach_checksums, verify_dataset

        idx = write_dataset(
            points, pts_fmt, local_store, n_files=2, chunk_units=200,
            codec="zlib",
        )
        idx = attach_checksums(idx, {"local": local_store})
        victim = idx.chunks[0]
        blob = bytearray(local_store.get(victim.key))
        for i in range(victim.enc_offset, victim.enc_offset + victim.enc_nbytes):
            blob[i] ^= 0xFF
        local_store.put(victim.key, bytes(blob))
        bad = verify_dataset(idx, {"local": local_store})
        assert victim.chunk_id in {c.chunk_id for c in bad}

    def test_unknown_codec_fails_at_write(self, points, pts_fmt, local_store):
        with pytest.raises(ValueError, match="unknown codec"):
            write_dataset(
                points, pts_fmt, local_store, n_files=2, chunk_units=200,
                codec="gzip",
            )
