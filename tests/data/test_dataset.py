"""Unit tests for dataset writing, distribution, and chunk reads."""

import numpy as np
import pytest

from repro.data.dataset import (
    distribute_dataset,
    read_all_units,
    read_chunk,
    write_dataset,
)
from repro.data.formats import points_format


class TestWriteDataset:
    def test_roundtrip(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=4, chunk_units=100)
        back = read_all_units(idx, {"local": local_store})
        assert np.array_equal(back, points)

    def test_file_sizes_nearly_equal(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=7, chunk_units=50)
        sizes = [f.n_units for f in idx.files]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == len(points)

    def test_files_exist_in_store(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=3, chunk_units=100)
        assert local_store.list_keys() == sorted(f.key for f in idx.files)

    def test_too_many_files_raises(self, pts_fmt, local_store):
        with pytest.raises(ValueError):
            write_dataset(np.zeros((2, 4)), pts_fmt, local_store, n_files=3, chunk_units=1)

    def test_invalid_n_files(self, points, pts_fmt, local_store):
        with pytest.raises(ValueError):
            write_dataset(points, pts_fmt, local_store, n_files=0, chunk_units=10)


class TestReadChunk:
    def test_chunk_contents_match_slice(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=2, chunk_units=300)
        # Chunk 1 of file 0 covers units [300, 600) of the first half.
        chunk = idx.chunks[1]
        got = read_chunk(idx, chunk.chunk_id, {"local": local_store})
        assert np.array_equal(got, points[300:600])

    def test_dense_id_check(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=2, chunk_units=300)
        idx.chunks.pop(0)
        with pytest.raises(ValueError):
            read_chunk(idx, 0, {"local": local_store})


class TestDistributeDataset:
    def test_moves_files_and_preserves_data(self, points, pts_fmt, stores):
        local = stores["local"]
        idx = write_dataset(points, pts_fmt, local, n_files=8, chunk_units=100)
        placed = distribute_dataset(idx, stores, {"local": 0.5, "cloud": 0.5}, local)
        back = read_all_units(placed, stores)
        assert np.array_equal(back, points)

    def test_moved_files_deleted_from_source(self, points, pts_fmt, stores):
        local = stores["local"]
        idx = write_dataset(points, pts_fmt, local, n_files=4, chunk_units=100)
        placed = distribute_dataset(idx, stores, {"local": 0.5, "cloud": 0.5}, local)
        cloud_keys = {f.key for f in placed.files if f.location == "cloud"}
        for key in cloud_keys:
            assert not local.exists(key)
            assert stores["cloud"].exists(key)

    def test_all_cloud(self, points, pts_fmt, stores):
        local = stores["local"]
        idx = write_dataset(points, pts_fmt, local, n_files=4, chunk_units=100)
        placed = distribute_dataset(idx, stores, {"cloud": 1.0}, local)
        assert placed.locations == ["cloud"]
        assert local.list_keys() == []

    def test_read_all_units_empty_index(self, pts_fmt, stores):
        from repro.data.index import build_index

        idx = build_index(pts_fmt, [], chunk_units=5)
        out = read_all_units(idx, stores)
        assert out.shape[0] == 0
