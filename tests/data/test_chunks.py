"""Unit tests for chunk planning."""

import pytest

from repro.data.chunks import ChunkInfo, plan_file_chunks


def plan(file_units, chunk_units, **kw):
    defaults = dict(
        file_id=0, key="part-00000.bin", file_units=file_units,
        unit_nbytes=8, chunk_units=chunk_units, location="local",
    )
    defaults.update(kw)
    return plan_file_chunks(**defaults)


class TestPlanFileChunks:
    def test_even_split(self):
        chunks = plan(100, 25)
        assert len(chunks) == 4
        assert [c.n_units for c in chunks] == [25] * 4
        assert [c.offset for c in chunks] == [0, 200, 400, 600]

    def test_ragged_tail(self):
        chunks = plan(10, 4)
        assert [c.n_units for c in chunks] == [4, 4, 2]
        assert chunks[-1].nbytes == 16

    def test_chunk_ids_sequential_from_start(self):
        chunks = plan(10, 4, first_chunk_id=7)
        assert [c.chunk_id for c in chunks] == [7, 8, 9]

    def test_offsets_are_byte_offsets(self):
        chunks = plan(6, 2, unit_nbytes=32)
        assert [c.offset for c in chunks] == [0, 64, 128]

    def test_total_units_conserved(self):
        chunks = plan(97, 10)
        assert sum(c.n_units for c in chunks) == 97

    def test_empty_file(self):
        assert plan(0, 5) == []

    def test_invalid_chunk_units(self):
        with pytest.raises(ValueError):
            plan(10, 0)

    def test_negative_file_units(self):
        with pytest.raises(ValueError):
            plan(-1, 5)

    def test_chunkinfo_dict_roundtrip(self):
        c = plan(10, 4)[1]
        assert ChunkInfo.from_dict(c.to_dict()) == c
