"""The single redundancy validator: every entry point, one wording.

``replicas``/``stripe`` validation used to live in three places
(EngineOptions, the driver, dataset helpers) with drifting messages;
:mod:`repro.data.redundancy` is now the only path, so the same bad
input produces the same error everywhere.
"""

import pytest

from repro.data.redundancy import (
    GF256_LIMIT,
    normalize_stripe,
    validate_redundancy,
)
from repro.runtime.core import EngineOptions


class TestNormalizeStripe:
    def test_none_passes_through(self):
        assert normalize_stripe(None) is None

    def test_valid_tuple_normalized_to_ints(self):
        assert normalize_stripe((4.0, 2)) == (4, 2)

    @pytest.mark.parametrize("bad", [(4,), (1, 2, 3), "4:2", 4])
    def test_shape_errors(self, bad):
        with pytest.raises(ValueError, match="stripe must be"):
            normalize_stripe(bad)

    @pytest.mark.parametrize("bad", [(0, 2), (-1, 3), (1, 0)])
    def test_range_errors(self, bad):
        with pytest.raises(ValueError, match="stripe needs k >= 1"):
            normalize_stripe(bad)

    def test_gf256_width_cap(self):
        with pytest.raises(ValueError, match=f"GF\\(256\\) limit {GF256_LIMIT}"):
            normalize_stripe((250, 10))


class TestValidateRedundancy:
    def test_negative_replicas(self):
        with pytest.raises(ValueError, match="replicas must be non-negative"):
            validate_redundancy(replicas=-1)

    def test_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            validate_redundancy(replicas=1, stripe=(2, 1))

    def test_store_count_check(self):
        with pytest.raises(ValueError, match="2 replicas need 3 stores, have 2"):
            validate_redundancy(replicas=2, n_stores=2)

    def test_valid_returns_normalized_stripe(self):
        assert validate_redundancy(stripe=(3.0, 2.0)) == (3, 2)
        assert validate_redundancy(replicas=1, n_stores=2) is None


class TestUniformWordingAcrossEntryPoints:
    """Every layer rejects with the validator's wording."""

    def test_engine_options_same_stripe_wording(self):
        with pytest.raises(ValueError, match="stripe needs k >= 1"):
            EngineOptions(stripe=(0, 2))

    def test_engine_options_same_shape_wording(self):
        with pytest.raises(ValueError, match="stripe must be"):
            EngineOptions(stripe=(4,))

    def test_dataset_helpers_same_wording(self):
        from repro.data.dataset import replicate_dataset, stripe_dataset

        with pytest.raises(ValueError, match="1 replicas need 2 stores"):
            replicate_dataset(None, {"only": object()}, n_replicas=1)
        with pytest.raises(ValueError, match="stripe needs k >= 1"):
            stripe_dataset(None, {}, k=0, m=2)
