"""Unit tests for the data index and placement."""

import numpy as np
import pytest

from repro.data.formats import points_format, tokens_format
from repro.data.index import DataIndex, build_index


@pytest.fixture
def index():
    return build_index(points_format(4), [100, 100, 100, 100], chunk_units=30)


class TestBuildIndex:
    def test_file_and_chunk_counts(self, index):
        assert len(index.files) == 4
        # 100 units / 30 per chunk = 4 chunks per file (last has 10).
        assert len(index.chunks) == 16

    def test_totals(self, index):
        assert index.n_units == 400
        assert index.nbytes == 400 * 32

    def test_chunk_ids_dense_and_ordered(self, index):
        assert [c.chunk_id for c in index.chunks] == list(range(16))

    def test_all_local_initially(self, index):
        assert index.locations == ["local"]

    def test_uneven_files(self):
        idx = build_index(tokens_format(), [5, 0, 3], chunk_units=2)
        assert [f.n_units for f in idx.files] == [5, 0, 3]
        assert sum(c.n_units for c in idx.chunks) == 8

    def test_keys_follow_prefix(self):
        idx = build_index(tokens_format(), [4], chunk_units=2, key_prefix="data")
        assert idx.files[0].key == "data-00000.bin"


class TestPlacement:
    def test_fifty_fifty_split_by_bytes(self, index):
        placed = index.with_placement({"local": 0.5, "cloud": 0.5})
        local_bytes = sum(f.nbytes for f in placed.files if f.location == "local")
        assert local_bytes == index.nbytes // 2

    def test_chunks_inherit_file_location(self, index):
        placed = index.with_placement({"local": 0.25, "cloud": 0.75})
        locs = {f.file_id: f.location for f in placed.files}
        for c in placed.chunks:
            assert c.location == locs[c.file_id]

    def test_all_cloud(self, index):
        placed = index.with_placement({"cloud": 1.0})
        assert placed.locations == ["cloud"]

    def test_skewed_split_file_granularity(self):
        idx = build_index(tokens_format(), [10] * 32, chunk_units=10)
        placed = idx.with_placement({"local": 1 / 6, "cloud": 5 / 6})
        n_local = sum(1 for f in placed.files if f.location == "local")
        # 32 files * 1/6 ~ 5.33 -> 5 or 6 whole files land locally.
        assert n_local in (5, 6)

    def test_fractions_need_not_sum_to_one(self, index):
        placed = index.with_placement({"local": 2, "cloud": 2})
        local_bytes = sum(f.nbytes for f in placed.files if f.location == "local")
        assert local_bytes == index.nbytes // 2

    def test_zero_total_fraction_raises(self, index):
        with pytest.raises(ValueError):
            index.with_placement({"local": 0.0})

    def test_original_index_unchanged(self, index):
        index.with_placement({"cloud": 1.0})
        assert index.locations == ["local"]


class TestSerialization:
    def test_json_roundtrip(self, index):
        placed = index.with_placement({"local": 0.5, "cloud": 0.5})
        back = DataIndex.from_json(placed.to_json())
        assert back.fmt == placed.fmt
        assert back.files == placed.files
        assert back.chunks == placed.chunks

    def test_save_load(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        index.save(path)
        back = DataIndex.load(path)
        assert back.chunks == index.chunks

    def test_meta_preserved(self):
        idx = build_index(tokens_format(), [4], chunk_units=2, meta={"app": "x"})
        assert DataIndex.from_json(idx.to_json()).meta == {"app": "x"}
