"""Unit tests for chunk integrity (CRC32) and corruption detection."""

import numpy as np
import pytest

from repro.data.dataset import read_chunk, write_dataset
from repro.data.formats import points_format
from repro.data.integrity import (
    IntegrityError,
    attach_checksums,
    verify_chunk_bytes,
    verify_dataset,
)


@pytest.fixture
def checked_index(points, pts_fmt, local_store):
    idx = write_dataset(points, pts_fmt, local_store, n_files=3, chunk_units=300)
    return attach_checksums(idx, {"local": local_store})


def corrupt(store, key, offset=10):
    """Flip one byte of an object in place."""
    data = bytearray(store.get(key))
    data[offset] ^= 0xFF
    store.put(key, bytes(data))


class TestAttachChecksums:
    def test_every_chunk_stamped(self, checked_index):
        assert all(c.crc32 is not None for c in checked_index.chunks)

    def test_original_index_untouched(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=2, chunk_units=300)
        attach_checksums(idx, {"local": local_store})
        assert all(c.crc32 is None for c in idx.chunks)

    def test_checksums_survive_json(self, checked_index):
        from repro.data.index import DataIndex

        back = DataIndex.from_json(checked_index.to_json())
        assert [c.crc32 for c in back.chunks] == [c.crc32 for c in checked_index.chunks]

    def test_checksums_survive_placement(self, checked_index):
        placed = checked_index.with_placement({"local": 0.5, "cloud": 0.5})
        assert [c.crc32 for c in placed.chunks] == [c.crc32 for c in checked_index.chunks]


class TestVerification:
    def test_clean_dataset_passes(self, checked_index, local_store):
        assert verify_dataset(checked_index, {"local": local_store}) == []

    def test_corruption_detected_by_scrub(self, checked_index, local_store):
        key = checked_index.files[0].key
        corrupt(local_store, key)
        bad = verify_dataset(checked_index, {"local": local_store})
        assert len(bad) >= 1
        assert all(c.key == key for c in bad)

    def test_read_chunk_verify_raises(self, checked_index, local_store):
        corrupt(local_store, checked_index.chunks[0].key, offset=0)
        with pytest.raises(IntegrityError):
            read_chunk(checked_index, 0, {"local": local_store}, verify=True)

    def test_read_chunk_without_verify_returns_garbage(self, checked_index, local_store):
        corrupt(local_store, checked_index.chunks[0].key, offset=0)
        # No verification requested: decoding succeeds (silently wrong).
        out = read_chunk(checked_index, 0, {"local": local_store}, verify=False)
        assert out.shape[0] == checked_index.chunks[0].n_units

    def test_unstamped_chunks_pass_trivially(self, points, pts_fmt, local_store):
        idx = write_dataset(points, pts_fmt, local_store, n_files=2, chunk_units=300)
        read_chunk(idx, 0, {"local": local_store}, verify=True)  # no error
        assert verify_dataset(idx, {"local": local_store}) == []

    def test_missing_file_counts_as_bad(self, checked_index, local_store):
        local_store.delete(checked_index.files[0].key)
        bad = verify_dataset(checked_index, {"local": local_store})
        assert {c.file_id for c in bad} == {0}

    def test_verify_chunk_bytes_direct(self, checked_index, local_store):
        c = checked_index.chunks[0]
        raw = local_store.get(c.key, c.offset, c.nbytes)
        verify_chunk_bytes(c, raw)  # clean
        with pytest.raises(IntegrityError) as exc:
            verify_chunk_bytes(c, raw[:-1] + bytes([raw[-1] ^ 1]))
        assert exc.value.chunk is c


class TestEngineVerification:
    def test_engine_detects_corruption(self, points, pts_fmt, local_store):
        from repro.apps.knn import KnnSpec
        from repro.runtime.engine import ClusterConfig, ThreadedEngine

        idx = write_dataset(points, pts_fmt, local_store, n_files=2, chunk_units=300)
        idx = attach_checksums(idx, {"local": local_store})
        corrupt(local_store, idx.files[1].key)
        engine = ThreadedEngine(
            [ClusterConfig("local", "local", 2)], {"local": local_store},
            verify_chunks=True,
        )
        with pytest.raises(IntegrityError):
            engine.run(KnnSpec(np.zeros(4), 3), idx)

    def test_engine_clean_run_with_verification(self, points, pts_fmt, local_store):
        from repro.apps.knn import KnnSpec, knn_exact
        from repro.runtime.engine import ClusterConfig, ThreadedEngine

        idx = write_dataset(points, pts_fmt, local_store, n_files=2, chunk_units=300)
        idx = attach_checksums(idx, {"local": local_store})
        engine = ThreadedEngine(
            [ClusterConfig("local", "local", 2)], {"local": local_store},
            verify_chunks=True,
        )
        rr = engine.run(KnnSpec(np.zeros(4), 5), idx)
        ref = knn_exact(points, np.zeros(4), 5)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])
