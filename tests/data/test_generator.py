"""Unit tests for synthetic workload generators."""

import numpy as np
import pytest

from repro.data.generator import generate_edges, generate_points, generate_tokens


class TestGeneratePoints:
    def test_shape_and_dtype(self):
        pts = generate_points(100, 5, seed=1)
        assert pts.shape == (100, 5)
        assert pts.dtype == np.float64

    def test_deterministic(self):
        assert np.array_equal(generate_points(50, 3, seed=7), generate_points(50, 3, seed=7))

    def test_seed_changes_output(self):
        assert not np.array_equal(generate_points(50, 3, seed=1), generate_points(50, 3, seed=2))

    def test_clustered_structure(self):
        # With tiny spread, points concentrate near <= n_clusters centers.
        pts = generate_points(500, 2, n_clusters=3, spread=1e-6, seed=4)
        uniq = np.unique(pts.round(3), axis=0)
        assert len(uniq) <= 3

    def test_zero_points(self):
        assert generate_points(0, 4, seed=0).shape == (0, 4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_points(10, 0)
        with pytest.raises(ValueError):
            generate_points(10, 2, n_clusters=0)


class TestGenerateEdges:
    def test_shape_and_range(self):
        e = generate_edges(100, 1000, seed=2)
        assert e.shape == (1000, 2)
        assert e.min() >= 0 and e.max() < 100

    def test_no_dangling_when_enough_edges(self):
        e = generate_edges(50, 200, seed=3)
        outdeg = np.bincount(e[:, 0], minlength=50)
        assert (outdeg > 0).all()

    def test_indegree_skew(self):
        e = generate_edges(1000, 20000, seed=5)
        indeg = np.bincount(e[:, 1], minlength=1000)
        # Zipf destinations: the most popular page collects far more
        # in-links than the median page.
        assert indeg.max() > 10 * max(1, int(np.median(indeg)))

    def test_deterministic(self):
        assert np.array_equal(generate_edges(10, 50, seed=1), generate_edges(10, 50, seed=1))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_edges(0, 10)


class TestGenerateTokens:
    def test_shape_and_range(self):
        t = generate_tokens(500, 20, seed=6)
        assert t.shape == (500,)
        assert t.min() >= 0 and t.max() < 20

    def test_zipf_skew(self):
        t = generate_tokens(20000, 100, seed=8)
        counts = np.bincount(t, minlength=100)
        assert counts.max() > 5 * np.median(counts)

    def test_invalid_vocab(self):
        with pytest.raises(ValueError):
            generate_tokens(10, 0)
