"""Unit tests for data-unit grouping."""

import numpy as np
import pytest

from repro.data.units import iter_unit_groups, units_per_group


class TestUnitsPerGroup:
    def test_exact_division(self):
        assert units_per_group(1024, 64) == 16

    def test_floor_division(self):
        assert units_per_group(100, 64) == 1

    def test_minimum_one(self):
        assert units_per_group(8, 64) == 1

    def test_invalid_cache_size(self):
        with pytest.raises(ValueError):
            units_per_group(0, 64)

    def test_invalid_unit_size(self):
        with pytest.raises(ValueError):
            units_per_group(64, 0)


class TestIterUnitGroups:
    def test_covers_all_units_in_order(self):
        arr = np.arange(10)
        groups = list(iter_unit_groups(arr, 3))
        assert [len(g) for g in groups] == [3, 3, 3, 1]
        assert np.array_equal(np.concatenate(groups), arr)

    def test_exact_multiple(self):
        arr = np.arange(9).reshape(3, 3)
        groups = list(iter_unit_groups(arr, 3))
        assert len(groups) == 1
        assert np.array_equal(groups[0], arr)

    def test_groups_are_views(self):
        arr = np.arange(10.0)
        g = next(iter_unit_groups(arr, 4))
        assert g.base is arr

    def test_empty_input_yields_nothing(self):
        assert list(iter_unit_groups(np.empty((0, 2)), 5)) == []

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            list(iter_unit_groups(np.arange(3), 0))
