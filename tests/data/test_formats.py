"""Unit tests for record formats."""

import numpy as np
import pytest

from repro.data.formats import RecordFormat, edges_format, points_format, tokens_format


class TestRecordFormat:
    def test_unit_nbytes_points(self):
        fmt = points_format(8)
        assert fmt.unit_nbytes == 64
        assert fmt.values_per_unit == 8

    def test_unit_nbytes_scalar(self):
        fmt = tokens_format()
        assert fmt.unit_nbytes == 8
        assert fmt.values_per_unit == 1

    def test_unit_nbytes_edges(self):
        assert edges_format().unit_nbytes == 16

    def test_encode_decode_roundtrip_points(self):
        fmt = points_format(3)
        arr = np.arange(12, dtype=np.float64).reshape(4, 3)
        assert np.array_equal(fmt.decode(fmt.encode(arr)), arr)

    def test_encode_decode_roundtrip_scalar(self):
        fmt = tokens_format()
        arr = np.array([5, 1, 9], dtype=np.int64)
        assert np.array_equal(fmt.decode(fmt.encode(arr)), arr)

    def test_decode_is_view_not_copy(self):
        fmt = tokens_format()
        buf = fmt.encode(np.arange(10, dtype=np.int64))
        out = fmt.decode(buf)
        assert out.base is not None  # backed by the buffer, not copied
        assert not out.flags.owndata

    def test_decode_is_readonly_even_over_writable_buffer(self):
        fmt = points_format(2)
        buf = bytearray(fmt.encode(np.ones((3, 2))))
        out = fmt.decode(buf)
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0, 0] = 7.0

    def test_encode_wrong_shape_raises(self):
        fmt = points_format(3)
        with pytest.raises(ValueError):
            fmt.encode(np.zeros((4, 2)))

    def test_decode_partial_unit_raises(self):
        fmt = points_format(2)
        with pytest.raises(ValueError, match="truncated or corrupt"):
            fmt.decode(b"\x00" * 17)

    def test_decode_truncated_tail_never_silently_dropped(self):
        fmt = points_format(2)  # 16-byte units
        whole = fmt.encode(np.ones((4, 2)))
        with pytest.raises(ValueError, match="15 trailing bytes"):
            fmt.decode(whole[:-1])

    def test_n_units(self):
        fmt = points_format(2)  # 16-byte units
        assert fmt.n_units(64) == 4
        with pytest.raises(ValueError):
            fmt.n_units(63)

    def test_dict_roundtrip(self):
        fmt = RecordFormat("custom", np.float32, (5,))
        back = RecordFormat.from_dict(fmt.to_dict())
        assert back == fmt
        assert back.unit_nbytes == 20

    def test_zero_dim_record_shape_rejected(self):
        with pytest.raises(ValueError):
            RecordFormat("bad", np.float64, (0,))

    def test_encode_casts_dtype(self):
        fmt = points_format(2, dtype=np.float32)
        arr = np.ones((3, 2), dtype=np.float64)
        decoded = fmt.decode(fmt.encode(arr))
        assert decoded.dtype == np.float32
        assert np.array_equal(decoded, arr.astype(np.float32))

    def test_empty_array_roundtrip(self):
        fmt = points_format(4)
        arr = np.empty((0, 4))
        out = fmt.decode(fmt.encode(arr))
        assert out.shape == (0, 4)
