"""Per-chunk statistics: the metadata side of metadata-first retrieval.

The organizer computes :class:`ChunkStats` in its single write pass;
pruning is only sound if these stats are exact (min/max/count/sum over
the decoded values), NaN-safe, overflow-safe, and survive every index
transformation (codecs, placement, replication, JSON round-trips).
"""

import json
import math

import numpy as np
import pytest

from repro.data.chunks import SAMPLE_UNITS, ChunkStats, compute_chunk_stats
from repro.data.dataset import distribute_dataset, replicate_dataset, write_dataset
from repro.data.formats import RecordFormat, points_format, tokens_format
from repro.data.index import DataIndex
from repro.storage.local import MemoryStore


class TestComputeChunkStats:
    def test_scalar_ints(self):
        st = compute_chunk_stats(np.array([5, 1, 9, 3], dtype=np.int64))
        assert st.n_units == 4
        assert st.counts == (4,)
        assert st.mins == (1,)
        assert st.maxs == (9,)
        assert st.sums == (18,)
        assert st.mean(0) == pytest.approx(4.5)

    def test_multifield_records(self):
        pts = np.array([[1.0, 10.0], [3.0, -2.0], [2.0, 4.0]])
        st = compute_chunk_stats(pts)
        assert st.n_fields == 2
        assert st.mins == (1.0, -2.0)
        assert st.maxs == (3.0, 10.0)
        assert st.sums == (6.0, 12.0)

    def test_empty_chunk(self):
        st = compute_chunk_stats(np.empty((0, 3)))
        assert st.n_units == 0
        assert st.counts == (0, 0, 0)
        assert st.mins == (None, None, None)
        assert st.maxs == (None, None, None)
        assert st.sample == ()
        assert st.mean(0) is None
        # Unknown bounds must never exclude the chunk.
        assert st.overlaps(0, -1e9, 1e9)
        assert st.overlaps(2, 5.0, 5.0)

    def test_single_unit(self):
        st = compute_chunk_stats(np.array([7], dtype=np.int64))
        assert st.n_units == 1
        assert st.mins == (7,) and st.maxs == (7,) and st.sums == (7,)
        assert st.sample == ((7,),)
        assert st.overlaps(0, 7, 7)
        assert not st.overlaps(0, 8, 9)

    def test_nan_values_ignored_in_bounds(self):
        col = np.array([np.nan, 2.0, np.nan, 5.0])
        st = compute_chunk_stats(col)
        assert st.counts == (2,)
        assert st.mins == (2.0,) and st.maxs == (5.0,)
        assert st.sums == (7.0,)

    def test_all_nan_field_keeps_chunk(self):
        st = compute_chunk_stats(np.array([np.nan, np.nan]))
        assert st.counts == (0,)
        assert st.mins == (None,) and st.maxs == (None,)
        # relevant() built on overlaps() cannot mis-prune an opaque chunk.
        assert st.overlaps(0, 0.0, 1.0)

    def test_infinities_survive(self):
        st = compute_chunk_stats(np.array([np.inf, -np.inf, 1.0]))
        assert st.counts == (3,)
        assert st.mins == (-np.inf,) and st.maxs == (np.inf,)
        assert st.overlaps(0, 100.0, 200.0)  # infinite span overlaps all

    def test_nan_bounds_defensive_overlap(self):
        # Hand-built stats with NaN bounds (cannot arise from
        # compute_chunk_stats) must still keep the chunk.
        st = ChunkStats(1, (1,), (float("nan"),), (float("nan"),), (0.0,))
        assert st.overlaps(0, 0.0, 1.0)

    def test_int_sum_overflow_exact(self):
        big = np.array([2**62, 2**62, 2**62, 2**62], dtype=np.int64)
        st = compute_chunk_stats(big)
        assert st.sums == (2**64,)  # int64 accumulation would wrap to 0
        assert st.mins == (2**62,) and st.maxs == (2**62,)

    def test_sample_is_bounded_and_representative(self):
        st = compute_chunk_stats(np.arange(1000, dtype=np.int64))
        assert len(st.sample) == SAMPLE_UNITS
        values = [row[0] for row in st.sample]
        assert values[0] == 0 and values[-1] == 999
        assert values == sorted(values)
        assert st.sample_fraction(lambda row: row[0] < 500) == pytest.approx(
            0.5, abs=0.2
        )

    def test_sample_disabled(self):
        st = compute_chunk_stats(np.arange(10), sample_units=0)
        assert st.sample == ()
        assert st.sample_fraction(lambda row: True) == 0.0


class TestStatsSerialization:
    def test_roundtrip_plain(self):
        st = compute_chunk_stats(np.array([[1.5, 2.5], [3.5, -4.5]]))
        assert ChunkStats.from_dict(st.to_dict()) == st

    @pytest.mark.parametrize("data", [
        np.array([np.inf, 1.0]),
        np.array([-np.inf, np.inf]),
        np.array([np.nan, 2.0]),
        np.array([np.nan, np.nan]),
    ], ids=["inf", "both-inf", "nan", "all-nan"])
    def test_roundtrip_nonfinite_through_json(self, data):
        st = compute_chunk_stats(data)
        # Strict JSON (no Infinity/NaN literals) must survive the trip.
        text = json.dumps(st.to_dict(), allow_nan=False)
        back = ChunkStats.from_dict(json.loads(text))
        assert back == st

    def test_roundtrip_bigint_sum(self):
        st = compute_chunk_stats(np.array([2**62] * 4, dtype=np.int64))
        back = ChunkStats.from_dict(json.loads(json.dumps(st.to_dict())))
        assert back.sums == (2**64,)


class TestWriteDatasetStats:
    def test_every_chunk_carries_stats_by_default(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(200, 3))
        store = MemoryStore()
        idx = write_dataset(pts, points_format(3), store, n_files=4, chunk_units=16)
        assert all(c.stats is not None for c in idx.chunks)
        assert all(c.stats.n_units == c.n_units for c in idx.chunks)
        assert all(c.stats.n_fields == 3 for c in idx.chunks)
        assert sum(c.n_units for c in idx.chunks) == 200

    def test_stats_match_decoded_chunk_values(self):
        toks = np.sort(np.random.default_rng(5).integers(0, 500, size=120))
        store = MemoryStore()
        idx = write_dataset(toks, tokens_format(), store, n_files=3, chunk_units=10)
        pos = 0
        for f in idx.files:
            for c in (c for c in idx.chunks if c.file_id == f.file_id):
                expect = compute_chunk_stats(toks[pos:pos + c.n_units])
                assert c.stats == expect, f"chunk {c.chunk_id} stats diverged"
                pos += c.n_units
        assert pos == 120

    def test_codec_and_plain_stats_identical(self):
        toks = np.random.default_rng(6).integers(0, 99, size=90)
        plain = write_dataset(toks, tokens_format(), MemoryStore(),
                              n_files=2, chunk_units=8)
        coded = write_dataset(toks, tokens_format(), MemoryStore(),
                              n_files=2, chunk_units=8, codec="zlib")
        for a, b in zip(plain.chunks, coded.chunks):
            assert a.stats == b.stats

    def test_stats_opt_out(self):
        toks = np.arange(40)
        idx = write_dataset(toks, tokens_format(), MemoryStore(),
                            n_files=2, chunk_units=8, stats=False)
        assert all(c.stats is None for c in idx.chunks)

    def test_stats_survive_placement_replication_and_json(self):
        toks = np.arange(80)
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        idx = write_dataset(toks, tokens_format(), stores["local"],
                            n_files=2, chunk_units=8)
        placed = distribute_dataset(
            idx, stores, {"local": 0.5, "cloud": 0.5}, stores["local"]
        )
        replicated = replicate_dataset(placed, stores, n_replicas=1)
        assert all(c.stats is not None for c in replicated.chunks)
        back = DataIndex.from_json(replicated.to_json())
        for a, b in zip(replicated.chunks, back.chunks):
            assert a.stats == b.stats
            assert len(b.sources) == len(a.sources)

    def test_old_index_without_stats_still_loads(self):
        toks = np.arange(40)
        idx = write_dataset(toks, tokens_format(), MemoryStore(),
                            n_files=2, chunk_units=8, stats=False)
        d = idx.to_dict()
        assert all("stats" not in c for f in [d] for c in d["chunks"])
        back = DataIndex.from_json(json.dumps(d))
        assert all(c.stats is None for c in back.chunks)


class TestOverlapSemantics:
    def test_inclusive_bounds(self):
        st = compute_chunk_stats(np.array([10, 20], dtype=np.int64))
        assert st.overlaps(0, 20, 30)   # touching at max
        assert st.overlaps(0, 0, 10)    # touching at min
        assert not st.overlaps(0, 21, 30)
        assert not st.overlaps(0, 0, 9)

    def test_mean_uses_nonnan_count(self):
        st = compute_chunk_stats(np.array([np.nan, 4.0, 8.0]))
        assert st.mean(0) == pytest.approx(6.0)

    def test_nan_equality_in_custom_eq(self):
        a = compute_chunk_stats(np.array([np.inf, -np.inf]))
        b = ChunkStats.from_dict(a.to_dict())
        assert math.isnan(a.sums[0])
        assert a == b
        assert a != compute_chunk_stats(np.array([1.0, 2.0]))
