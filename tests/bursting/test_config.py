"""Unit tests for environment configurations."""

import pytest

from repro.bursting.config import (
    EnvironmentConfig,
    paper_environments,
    scalability_environments,
)
from repro.sim.calibration import APP_PROFILES, ResourceParams


class TestEnvironmentConfig:
    def test_data_fractions_hybrid(self):
        env = EnvironmentConfig("x", 1 / 3, 16, 16)
        f = env.data_fractions
        assert f["local"] == pytest.approx(1 / 3)
        assert f["cloud"] == pytest.approx(2 / 3)

    def test_data_fractions_pure(self):
        assert EnvironmentConfig("l", 1.0, 32, 0).data_fractions == {"local": 1.0}
        assert EnvironmentConfig("c", 0.0, 0, 32).data_fractions == {"cloud": 1.0}

    def test_clusters_built_with_speeds(self):
        params = ResourceParams()
        clusters = EnvironmentConfig("x", 0.5, 16, 22).clusters(params)
        by_name = {c.name: c for c in clusters}
        assert by_name["local"].core_speed == params.local_core_speed
        assert by_name["cloud"].core_speed == params.cloud_core_speed
        assert by_name["cloud"].n_cores == 22

    def test_zero_core_cluster_omitted(self):
        clusters = EnvironmentConfig("l", 1.0, 32, 0).clusters(ResourceParams())
        assert [c.name for c in clusters] == ["local"]

    def test_no_cores_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentConfig("x", 0.5, 0, 0).clusters(ResourceParams())


class TestPaperEnvironments:
    def test_five_configurations(self):
        envs = paper_environments(APP_PROFILES["knn"])
        assert [e.name for e in envs] == [
            "env-local", "env-cloud", "env-50/50", "env-33/67", "env-17/83",
        ]

    def test_knn_core_counts_match_paper(self):
        envs = {e.name: e for e in paper_environments(APP_PROFILES["knn"])}
        assert (envs["env-local"].local_cores, envs["env-local"].cloud_cores) == (32, 0)
        assert (envs["env-cloud"].local_cores, envs["env-cloud"].cloud_cores) == (0, 32)
        assert (envs["env-50/50"].local_cores, envs["env-50/50"].cloud_cores) == (16, 16)

    def test_kmeans_gets_extra_cloud_cores(self):
        envs = {e.name: e for e in paper_environments(APP_PROFILES["kmeans"])}
        assert envs["env-cloud"].cloud_cores == 44
        assert envs["env-17/83"].cloud_cores == 22

    def test_data_skew_progression(self):
        envs = paper_environments(APP_PROFILES["knn"])
        fractions = [e.local_data_fraction for e in envs[2:]]
        assert fractions == sorted(fractions, reverse=True)


class TestScalabilityEnvironments:
    def test_core_doubling(self):
        envs = scalability_environments()
        assert [(e.local_cores, e.cloud_cores) for e in envs] == [
            (4, 4), (8, 8), (16, 16), (32, 32),
        ]

    def test_all_data_in_s3(self):
        assert all(e.local_data_fraction == 0.0 for e in scalability_environments())
