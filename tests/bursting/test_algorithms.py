"""Unit tests for the library-level iterative drivers."""

import numpy as np
import pytest

from repro.apps.kmeans import lloyd_step
from repro.apps.pagerank import pagerank_reference
from repro.bursting.algorithms import kmeans_distributed, pagerank_distributed
from repro.bursting.session import BurstingSession
from repro.data.formats import edges_format, points_format
from repro.data.generator import generate_edges, generate_points
from repro.storage.local import MemoryStore


def make_session(units, fmt, local_fraction=0.5):
    stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
    return BurstingSession.from_units(units, fmt, stores, local_fraction=local_fraction)


class TestKMeansDistributed:
    def test_converges_to_single_machine_fixed_point(self):
        points = generate_points(4000, 4, n_clusters=4, spread=0.05, seed=131)
        init = generate_points(4, 4, seed=132)
        run = kmeans_distributed(make_session(points, points_format(4)), init,
                                 max_iters=40, tol=1e-12)
        ref = init
        for _ in range(run.iterations):
            ref = lloyd_step(points, ref).centroids
        np.testing.assert_allclose(run.centroids, ref)
        assert run.counts.sum() == 4000

    def test_converged_flag_and_history(self):
        points = generate_points(2000, 3, n_clusters=3, spread=0.05, seed=133)
        init = generate_points(3, 3, seed=134)
        run = kmeans_distributed(make_session(points, points_format(3)), init,
                                 max_iters=40, tol=1e-9)
        assert run.converged
        assert run.iterations == len(run.history)
        assert [h.iteration for h in run.history] == list(range(1, run.iterations + 1))
        # SSE history is non-increasing (deltas non-negative after warmup).
        assert all(h.delta >= -1e-12 for h in run.history[1:])

    def test_max_iters_caps(self):
        points = generate_points(1000, 3, seed=135)
        init = generate_points(5, 3, seed=136)
        run = kmeans_distributed(make_session(points, points_format(3)), init,
                                 max_iters=2, tol=0.0)
        assert run.iterations == 2
        assert not run.converged

    def test_validation(self):
        points = generate_points(100, 3, seed=1)
        session = make_session(points, points_format(3))
        with pytest.raises(ValueError):
            kmeans_distributed(session, np.zeros((2, 3)), max_iters=0)


class TestPageRankDistributed:
    def test_matches_reference_fixed_point(self):
        edges = generate_edges(400, 8000, seed=137)
        run = pagerank_distributed(
            make_session(edges, edges_format(), local_fraction=1 / 3),
            n_pages=400, tol=1e-12, max_iters=200,
        )
        assert run.converged
        np.testing.assert_allclose(run.ranks, pagerank_reference(edges, 400), atol=1e-9)

    def test_rank_mass_conserved(self):
        edges = generate_edges(200, 3000, seed=138)
        run = pagerank_distributed(make_session(edges, edges_format()), n_pages=200)
        assert run.ranks.sum() == pytest.approx(1.0)

    def test_top_pages(self):
        edges = generate_edges(300, 6000, seed=139)
        run = pagerank_distributed(make_session(edges, edges_format()), n_pages=300)
        top = run.top(5)
        assert len(top) == 5
        ranks = [r for _, r in top]
        assert ranks == sorted(ranks, reverse=True)
        assert ranks[0] == pytest.approx(run.ranks.max())

    def test_deltas_decrease(self):
        edges = generate_edges(200, 4000, seed=140)
        run = pagerank_distributed(make_session(edges, edges_format()), n_pages=200,
                                   max_iters=30)
        deltas = [h.delta for h in run.history]
        assert deltas[-1] < deltas[0]

    def test_validation(self):
        edges = generate_edges(50, 500, seed=1)
        session = make_session(edges, edges_format())
        with pytest.raises(ValueError):
            pagerank_distributed(session, n_pages=0)
