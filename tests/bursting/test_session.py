"""Unit tests for BurstingSession (iterative workloads)."""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansSpec, lloyd_step
from repro.apps.pagerank import PageRankSpec, out_degrees, pagerank_reference
from repro.bursting.session import BurstingSession
from repro.data.formats import edges_format, points_format
from repro.data.generator import generate_edges, generate_points
from repro.storage.local import MemoryStore


def make_stores():
    return {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}


class TestSessionBasics:
    def test_from_units_distributes_once(self, points):
        stores = make_stores()
        session = BurstingSession.from_units(
            points, points_format(4), stores, local_fraction=0.5
        )
        assert set(session.index.locations) == {"local", "cloud"}
        assert stores["local"].list_keys() and stores["cloud"].list_keys()

    def test_multiple_passes_same_data(self, points):
        session = BurstingSession.from_units(
            points, points_format(4), make_stores(), local_fraction=0.5
        )
        cents = generate_points(3, 4, seed=81)
        r1 = session.run(KMeansSpec(cents))
        r2 = session.run(KMeansSpec(cents))
        np.testing.assert_allclose(r1.result.centroids, r2.result.centroids)
        assert session.passes_run == 2

    def test_requires_both_stores(self, points):
        with pytest.raises(ValueError):
            BurstingSession.from_units(
                points, points_format(4), {"local": MemoryStore("local")}
            )

    def test_requires_workers(self, points):
        with pytest.raises(ValueError):
            BurstingSession.from_units(
                points, points_format(4), make_stores(),
                local_workers=0, cloud_workers=0,
            )

    def test_index_store_mismatch_rejected(self, points):
        stores = make_stores()
        session = BurstingSession.from_units(points, points_format(4), stores)
        with pytest.raises(ValueError):
            BurstingSession(session.index, {"local": stores["local"]})


class TestIterate:
    def test_kmeans_to_convergence_matches_reference(self, points):
        session = BurstingSession.from_units(
            points, points_format(4), make_stores(), local_fraction=1 / 3
        )
        init = generate_points(4, 4, seed=82)

        def converged(old, new):
            old_c = old if isinstance(old, np.ndarray) else old.centroids
            return bool(np.abs(new.centroids - old_c).max() < 1e-12)

        last = None
        for it, rr, state in session.iterate(
            lambda s: KMeansSpec(s if isinstance(s, np.ndarray) else s.centroids),
            init,
            max_iters=50,
            converged=converged,
        ):
            last = state
        # Single-machine Lloyd from the same init reaches the same point.
        ref = init
        for _ in range(it):
            ref = lloyd_step(points, ref).centroids
        np.testing.assert_allclose(last.centroids, ref)

    def test_pagerank_fixed_point(self, edges):
        n = 300
        session = BurstingSession.from_units(
            edges, edges_format(), make_stores(), local_fraction=0.5
        )
        outdeg = out_degrees(edges, n)
        ranks = np.full(n, 1.0 / n)
        for it, rr, new_ranks in session.iterate(
            lambda r: PageRankSpec(r, outdeg),
            ranks,
            max_iters=150,
            converged=lambda old, new: bool(
                np.abs(new - (old if isinstance(old, np.ndarray) else old)).sum() < 1e-12
            ),
        ):
            pass
        np.testing.assert_allclose(new_ranks, pagerank_reference(edges, n), atol=1e-8)

    def test_yields_iteration_numbers(self, points):
        session = BurstingSession.from_units(points, points_format(4), make_stores())
        init = generate_points(2, 4, seed=83)
        its = [
            it
            for it, _, s in session.iterate(
                lambda s: KMeansSpec(s if isinstance(s, np.ndarray) else s.centroids),
                init,
                max_iters=3,
            )
        ]
        assert its == [1, 2, 3]

    def test_invalid_max_iters(self, points):
        session = BurstingSession.from_units(points, points_format(4), make_stores())
        with pytest.raises(ValueError):
            list(session.iterate(lambda s: KMeansSpec(s), np.zeros((2, 4)), max_iters=0))


class TestSessionPipeline:
    def test_cache_warms_across_passes(self, points):
        session = BurstingSession.from_units(
            points, points_format(4), make_stores(),
            local_fraction=0.5, cache_mb=64,
        )
        cents = generate_points(3, 4, seed=81)
        r1 = session.run(KMeansSpec(cents))
        assert r1.stats.cache_hits == 0
        r2 = session.run(KMeansSpec(cents))
        np.testing.assert_allclose(r1.result.centroids, r2.result.centroids)
        assert r2.stats.cache_hits == len(session.index.chunks)
        assert r2.stats.cache_hit_rate == 1.0
        snap = session.cache_stats()
        assert snap["entries"] == len(session.index.chunks)
        assert snap["hits"] > 0

    def test_cache_disabled_by_default(self, points):
        session = BurstingSession.from_units(
            points, points_format(4), make_stores()
        )
        assert session.cache is None
        assert session.cache_stats() is None
        r = session.run(KMeansSpec(generate_points(3, 4, seed=81)))
        assert r.stats.cache_hits == 0

    def test_prefetch_session_matches_serial(self, points):
        cents = generate_points(3, 4, seed=81)
        serial = BurstingSession.from_units(
            points, points_format(4), make_stores(), local_fraction=0.5
        ).run(KMeansSpec(cents))
        pipelined = BurstingSession.from_units(
            points, points_format(4), make_stores(),
            local_fraction=0.5, prefetch=True, cache_mb=64,
        ).run(KMeansSpec(cents))
        np.testing.assert_allclose(
            serial.result.centroids, pipelined.result.centroids
        )
