"""Unit tests for the bursting drivers."""

import numpy as np
import pytest

from repro.apps.kmeans import lloyd_step
from repro.apps.knn import KnnSpec, knn_exact
from repro.bursting.config import EnvironmentConfig
from repro.bursting.driver import (
    paper_index,
    run_paper_sweep,
    run_scalability_sweep,
    run_threaded_bursting,
)
from repro.data.generator import generate_points
from repro.sim.calibration import (
    APP_PROFILES,
    PAPER_DATASET_NBYTES,
    PAPER_N_FILES,
    PAPER_N_JOBS,
)
from repro.storage.local import MemoryStore


class TestPaperIndex:
    def test_layout_matches_paper(self):
        idx = paper_index(APP_PROFILES["knn"], EnvironmentConfig("l", 1.0, 32, 0))
        assert len(idx.files) == PAPER_N_FILES
        assert len(idx.chunks) == PAPER_N_JOBS
        assert idx.nbytes == pytest.approx(PAPER_DATASET_NBYTES, rel=0.001)

    def test_placement_follows_env(self):
        idx = paper_index(APP_PROFILES["knn"], EnvironmentConfig("h", 1 / 3, 16, 16))
        local_bytes = sum(f.nbytes for f in idx.files if f.location == "local")
        assert local_bytes / idx.nbytes == pytest.approx(1 / 3, abs=0.05)

    def test_all_cloud_placement(self):
        idx = paper_index(APP_PROFILES["pagerank"], EnvironmentConfig("c", 0.0, 0, 32))
        assert idx.locations == ["cloud"]


class TestSweeps:
    def test_paper_sweep_has_five_envs(self):
        res = run_paper_sweep("knn")
        assert set(res) == {"env-local", "env-cloud", "env-50/50", "env-33/67", "env-17/83"}

    def test_scalability_sweep_has_four_configs(self):
        res = run_scalability_sweep("knn")
        assert list(res) == ["(4,4)", "(8,8)", "(16,16)", "(32,32)"]

    def test_scalability_monotone(self):
        res = run_scalability_sweep("kmeans")
        totals = [r.total_s for r in res.values()]
        assert totals == sorted(totals, reverse=True)

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            run_paper_sweep("nosuchapp")


class TestThreadedBursting:
    def test_knn_end_to_end(self):
        pts = generate_points(3000, 4, seed=31)
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        q = np.full(4, 0.4)
        rr = run_threaded_bursting(
            KnnSpec(q, 5), pts, stores, local_fraction=0.4,
            local_workers=2, cloud_workers=2,
        )
        ref = knn_exact(pts, q, 5)
        np.testing.assert_allclose([x[0] for x in rr.result], [r[0] for r in ref])
        assert rr.stats.jobs_processed > 0

    def test_kmeans_all_cloud_data(self):
        from repro.apps.kmeans import KMeansSpec

        pts = generate_points(2000, 4, seed=32)
        cents = generate_points(3, 4, seed=33)
        stores = {"local": MemoryStore("local"), "cloud": MemoryStore("cloud")}
        rr = run_threaded_bursting(
            KMeansSpec(cents), pts, stores, local_fraction=0.0,
            local_workers=1, cloud_workers=2,
        )
        ref = lloyd_step(pts, cents)
        np.testing.assert_allclose(rr.result.centroids, ref.centroids)

    def test_requires_both_stores(self):
        pts = generate_points(100, 4, seed=1)
        with pytest.raises(ValueError):
            run_threaded_bursting(
                KnnSpec(np.zeros(4), 3), pts, {"local": MemoryStore("local")}
            )
