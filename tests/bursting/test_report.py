"""Unit tests for report/table builders."""

import pytest

from repro.bursting.report import (
    average_slowdown_pct,
    fig3_rows,
    fig4_rows,
    format_table,
    table1_rows,
    table2_rows,
)
from repro.runtime.stats import ClusterStats, RunStats, WorkerStats
from repro.sim.simrun import SimRunResult


def make_result(total, clusters):
    """clusters: dict name -> (processing, retrieval, sync, jobs, stolen)."""
    rs = RunStats(total_s=total)
    for name, (p, r, s, jobs, stolen) in clusters.items():
        c = ClusterStats(name, name)
        c.workers.append(
            WorkerStats(processing_s=p, retrieval_s=r, sync_s=s,
                        jobs_processed=jobs, jobs_stolen=stolen)
        )
        c.idle_s = s / 2
        rs.clusters[name] = c
    rs.global_reduction_s = 1.0
    rs.processing_end_s = total - 1.0
    return SimRunResult(stats=rs, end_time_s=total)


@pytest.fixture
def results():
    return {
        "env-local": make_result(100.0, {"local": (60, 38, 2, 96, 0)}),
        "env-cloud": make_result(105.0, {"cloud": (60, 42, 3, 96, 0)}),
        "env-50/50": make_result(
            102.0,
            {"local": (30, 19, 2, 50, 2), "cloud": (29, 20, 3, 46, 0)},
        ),
    }


class TestFig3Rows:
    def test_one_row_per_cluster(self, results):
        rows = fig3_rows(results)
        assert len(rows) == 4
        hybrid = [r for r in rows if r["env"] == "env-50/50"]
        assert {r["cluster"] for r in hybrid} == {"local", "cloud"}

    def test_total_is_sum_of_components(self, results):
        for r in fig3_rows(results):
            assert r["total_s"] == pytest.approx(
                r["processing_s"] + r["retrieval_s"] + r["sync_s"]
            )


class TestTable1Rows:
    def test_job_counts(self, results):
        rows = {r["env"]: r for r in table1_rows(results)}
        assert rows["env-local"]["local_jobs"] == 96
        assert rows["env-local"]["cloud_jobs"] == 0
        assert rows["env-50/50"]["local_stolen"] == 2


class TestTable2Rows:
    def test_excludes_baselines(self, results):
        rows = table2_rows(results)
        assert [r["env"] for r in rows] == ["env-50/50"]

    def test_slowdown_vs_local_baseline(self, results):
        row = table2_rows(results)[0]
        assert row["total_slowdown_s"] == pytest.approx(2.0)
        assert row["slowdown_pct"] == pytest.approx(2.0)

    def test_missing_baseline_raises(self, results):
        del results["env-local"]
        with pytest.raises(KeyError):
            table2_rows(results)

    def test_average_slowdown(self, results):
        avg = average_slowdown_pct({"app": results})
        assert avg == pytest.approx(2.0)

    def test_average_requires_cells(self):
        with pytest.raises(ValueError):
            average_slowdown_pct({})


class TestFig4Rows:
    def test_efficiency_perfect_halving(self):
        res = {
            "(4,4)": make_result(100.0, {"local": (50, 48, 2, 48, 0)}),
            "(8,8)": make_result(50.0, {"local": (25, 24, 1, 48, 0)}),
        }
        rows = fig4_rows(res)
        assert rows[0]["efficiency_pct"] is None
        assert rows[1]["efficiency_pct"] == pytest.approx(100.0)

    def test_efficiency_sublinear(self):
        res = {
            "a": make_result(100.0, {"local": (50, 48, 2, 48, 0)}),
            "b": make_result(80.0, {"local": (40, 38, 2, 48, 0)}),
        }
        assert fig4_rows(res)[1]["efficiency_pct"] == pytest.approx(62.5)


class TestRowsToCsv:
    def test_roundtrip(self, results, tmp_path):
        import csv

        from repro.bursting.report import rows_to_csv

        rows = table1_rows(results)
        path = str(tmp_path / "t1.csv")
        rows_to_csv(rows, path)
        with open(path, newline="") as fh:
            back = list(csv.DictReader(fh))
        assert len(back) == len(rows)
        assert back[0]["env"] == rows[0]["env"]
        assert int(back[0]["local_jobs"]) == rows[0]["local_jobs"]

    def test_ragged_rows_union_headers(self, tmp_path):
        import csv

        from repro.bursting.report import rows_to_csv

        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = str(tmp_path / "r.csv")
        rows_to_csv(rows, path)
        with open(path, newline="") as fh:
            back = list(csv.DictReader(fh))
        assert back[0]["b"] == ""
        assert back[1]["b"] == "3"


class TestFormatTable:
    def test_renders_alignment(self, results):
        text = format_table(table1_rows(results), "Table I")
        lines = text.splitlines()
        assert lines[0] == "Table I"
        assert "env" in lines[1]
        assert len(lines) == 3 + len(results)

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], "T")
