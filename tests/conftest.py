"""Shared fixtures: small deterministic datasets and stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.formats import edges_format, points_format, tokens_format
from repro.data.generator import generate_edges, generate_points, generate_tokens
from repro.storage.local import MemoryStore


@pytest.fixture
def points():
    """2000 x 4 Gaussian-mixture points."""
    return generate_points(2000, 4, seed=11)


@pytest.fixture
def edges():
    """5000 edges over 300 pages, every page with out-degree >= 1."""
    return generate_edges(300, 5000, seed=12)


@pytest.fixture
def tokens():
    """8000 Zipf tokens over a 64-word vocabulary."""
    return generate_tokens(8000, 64, seed=13)


@pytest.fixture
def local_store():
    return MemoryStore(location="local")


@pytest.fixture
def cloud_store():
    return MemoryStore(location="cloud")


@pytest.fixture
def stores(local_store, cloud_store):
    return {"local": local_store, "cloud": cloud_store}


@pytest.fixture
def pts_fmt():
    return points_format(4)


@pytest.fixture
def edge_fmt():
    return edges_format()


@pytest.fixture
def tok_fmt():
    return tokens_format()


@pytest.fixture
def rng():
    return np.random.default_rng(99)
